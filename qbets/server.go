package qbets

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/whatif"
)

// Server exposes a Service over HTTP with a small JSON API, the deployment
// shape the paper anticipates ("a user and scheduling tool" fed periodic
// scheduler-log dumps):
//
//	POST /v1/observe   {"queue":"normal","procs":8,"wait_seconds":123}
//	                   (or a JSON array of such records)
//	GET  /v1/forecast?queue=normal&procs=8
//	POST /v1/forecast  [{"queue":"normal","procs":8}, ...]  (batch)
//	GET  /v1/profile?queue=normal&procs=8
//	GET  /v1/status
//	GET  /metrics      (Prometheus text exposition)
//	GET  /healthz
//
// Server is safe for concurrent use, and the forecast plane never blocks:
// forecast, profile, and status reads are served from the Service's
// RCU-published snapshots with no locking, so they cannot contend with
// ingest, refits, or snapshot saves — and ingest on distinct streams still
// proceeds in parallel through the sharded registry. Errors are reported
// as JSON bodies of the form {"error": "..."} with a matching status code.
//
// The server instruments itself through internal/obs: request counts by
// endpoint and status code, a prediction-latency histogram, ingested
// observation counts, and — scraped live from the Service — per-stream
// depth, change-point trims, and the rolling hit rate of resolved
// predictions against the target confidence (the paper's correctness
// metric, Tables 3–7, computed online). See docs/OPERATIONS.md.
type Server struct {
	svc *Service
	reg *obs.Registry

	httpRequests      *obs.CounterVec
	observations      *obs.Counter
	observeErrors     *obs.Counter
	panics            *obs.Counter
	predLatency       *obs.Histogram
	forecastBatchSize *obs.Histogram
	whatifScenarios   *obs.Counter
	whatifCacheHits   *obs.Counter
	whatifSizing      *obs.Counter
	whatifLatency     *obs.Histogram

	// whatifPlanners pools the capacity-planning simulators (whatif.go),
	// keyed by base-trace length × queue filter.
	whatifMu       sync.Mutex
	whatifPlanners map[whatifPlannerKey]*whatif.Planner

	// levelsJSON is the pre-rendered `,"quantile":…,"confidence":…`
	// fragment of every ForecastResponse: the two floats are fixed at
	// construction, and shortest-float formatting is the most expensive
	// part of the encode, so the serving path splices these bytes instead
	// of re-deriving them per response.
	levelsJSON []byte

	// reqCounters memoizes httpRequests.With per (endpoint, status): the
	// label-key formatting in CounterVec.With is a handful of allocations,
	// which the per-request accounting on the zero-alloc read path should
	// not pay twice for the same pair.
	reqCountersMu sync.RWMutex
	reqCounters   map[reqCounterKey]*obs.Counter

	// repl is the replication role, installed by SetLeaderReplication or
	// SetFollowerReplication (serverrepl.go); nil on an unreplicated node.
	repl atomic.Pointer[replState]
}

type reqCounterKey struct {
	endpoint string
	code     int
}

func (s *Server) requestCounter(endpoint string, code int) *obs.Counter {
	k := reqCounterKey{endpoint, code}
	s.reqCountersMu.RLock()
	c := s.reqCounters[k]
	s.reqCountersMu.RUnlock()
	if c == nil {
		c = s.httpRequests.With(endpoint, strconv.Itoa(code))
		s.reqCountersMu.Lock()
		s.reqCounters[k] = c
		s.reqCountersMu.Unlock()
	}
	return c
}

// maxObserveBody caps the POST /v1/observe request body. A batch of a few
// thousand records fits comfortably; anything larger is a client bug or an
// attack, and is rejected before it can exhaust memory.
const maxObserveBody = 1 << 20

// NewServer returns an HTTP server around a fresh Service. splitByProcs
// and opts behave as in NewService. The reported quantile and confidence
// come from the Service itself, so responses and metrics cannot drift
// from the forecasters' actual configuration.
func NewServer(splitByProcs bool, opts ...Option) *Server {
	return newServer(NewService(splitByProcs, opts...))
}

// NewServerWith wraps an existing Service (e.g. one restored from a state
// file) in a Server.
func NewServerWith(svc *Service) *Server { return newServer(svc) }

func newServer(svc *Service) *Server {
	reg := obs.NewRegistry()
	s := &Server{
		svc:               svc,
		reg:               reg,
		httpRequests:      reg.NewCounterVec("qbets_http_requests_total", "HTTP requests served, by endpoint and status code.", "endpoint", "code"),
		observations:      reg.NewCounter("qbets_observations_total", "Wait-time observations ingested."),
		observeErrors:     reg.NewCounter("qbets_observe_rejects_total", "Observe payloads rejected by validation."),
		panics:            reg.NewCounter("qbets_panics_total", "Handler panics recovered by the server."),
		predLatency:       reg.NewHistogram("qbets_prediction_latency_seconds", "Latency of forecast and profile computations.", obs.LatencyBuckets()),
		forecastBatchSize: reg.NewHistogram("qbets_forecast_batch_size", "Shapes per batch forecast request (POST /v1/forecast).", obs.SizeBuckets()),
		whatifScenarios:   reg.NewCounter("qbets_whatif_scenarios_total", "Scenarios answered by POST /v1/whatif (simulated or cache-served, baseline included)."),
		whatifCacheHits:   reg.NewCounter("qbets_whatif_cache_hits_total", "What-if scenarios served from the fingerprint-keyed cache."),
		whatifSizing:      reg.NewCounter("qbets_whatif_sizing_requests_total", "SLO sizing searches answered by POST /v1/whatif."),
		whatifLatency:     reg.NewHistogram("qbets_whatif_latency_seconds", "Latency of what-if grid evaluation and sizing, per request.", obs.LatencyBuckets()),
		whatifPlanners:    make(map[whatifPlannerKey]*whatif.Planner),
		reqCounters:       make(map[reqCounterKey]*obs.Counter),
	}
	s.levelsJSON = appendForecastLevels(nil, svc.Quantile(), svc.Confidence())
	// Durability metrics live on the Service (they tick whether or not a
	// registry exists); the server exposes them.
	d := svc.durabilityMetrics()
	reg.RegisterGauge("qbets_readonly", "1 while observation-log appends are failing and observes are refused; forecasts still serve.", d.readonly)
	reg.RegisterCounter("qbets_wal_appends_total", "Observation records appended to the write-ahead log.", d.appends)
	reg.RegisterCounter("qbets_wal_append_errors_total", "Failed write-ahead log appends (each one refused an observe).", d.appendErrors)
	reg.RegisterCounter("qbets_wal_replayed_records_total", "Observation records replayed from the write-ahead log at startup.", d.replayed)
	reg.RegisterCounter("qbets_wal_replay_dropped_total", "Replay truncation events: torn or corrupt log tails dropped during recovery.", d.replayDropped)
	reg.RegisterCounter("qbets_wal_replay_dropped_bytes_total", "Bytes discarded by replay truncations.", d.replayDroppedB)
	reg.RegisterCounter("qbets_wal_compact_errors_total", "Write-ahead log compaction failures (the snapshot still succeeded; the log is just longer).", d.compactErrors)
	qLabel := strconv.FormatFloat(svc.Quantile(), 'g', -1, 64)
	cLabel := strconv.FormatFloat(svc.Confidence(), 'g', -1, 64)
	reg.RegisterGaugeFunc("qbets_target_info",
		"Configured prediction target; the value is always 1, the labels carry the quantile and confidence.",
		func(emit func(string, float64)) {
			emit(obs.Labels("quantile", qLabel, "confidence", cLabel), 1)
		})
	l := svc.lifecycleMetrics()
	reg.RegisterCounter("qbets_stream_evictions_total", "Idle streams evicted to compact cold state (still serving reads; rehydrated on their next write).", l.evictions)
	reg.RegisterCounter("qbets_stream_rehydrations_total", "Cold streams rehydrated by a write.", l.rehydrations)
	reg.RegisterCounter("qbets_index_rebuilds_total", "Stream-index partition publications (per-partition copy-on-write republishes plus full rebuilds, counted per partition).", l.indexRebuilds)
	reg.RegisterGaugeFunc("qbets_streams", "Streams currently tracked, by lifecycle state: live streams hold a hydrated forecaster, evicted ones serve reads from compact cold state.",
		func(emit func(string, float64)) {
			live := svc.LiveStreams()
			emit(obs.Labels("state", "live"), float64(live))
			emit(obs.Labels("state", "evicted"), float64(svc.NumStreams()-live))
		})
	// Per-stream series are only emitted for registries small enough for a
	// scrape to digest; past the cap the aggregate series above still tell
	// the health story, and per-stream detail is available via /v1/status
	// with an explicit limit.
	perStream := func(each func(StreamStatus, func(string, float64))) func(func(string, float64)) {
		return func(emit func(string, float64)) {
			if svc.NumStreams() > perStreamMetricsCap {
				return
			}
			for _, st := range svc.Stats() {
				each(st, emit)
			}
		}
	}
	reg.RegisterGaugeFunc("qbets_stream_observations", "History depth per stream (omitted above "+strconv.Itoa(perStreamMetricsCap)+" streams).",
		perStream(func(st StreamStatus, emit func(string, float64)) {
			emit(obs.Labels("stream", st.Stream), float64(st.Observations))
		}))
	reg.RegisterGaugeFunc("qbets_stream_hit_rate",
		"Rolling fraction of resolved predictions whose wait fell within the quoted bound; compare against the target confidence.",
		perStream(func(st StreamStatus, emit func(string, float64)) {
			if st.RollingResolved > 0 {
				emit(obs.Labels("stream", st.Stream), st.RollingHitRate)
			}
		}))
	reg.RegisterGaugeFunc("qbets_stream_resolved", "Resolved predictions in the rolling hit-rate window, per stream.",
		perStream(func(st StreamStatus, emit func(string, float64)) {
			emit(obs.Labels("stream", st.Stream), float64(st.RollingResolved))
		}))
	reg.RegisterCounterFunc("qbets_stream_trims_total", "Change-point trims per stream.",
		perStream(func(st StreamStatus, emit func(string, float64)) {
			emit(obs.Labels("stream", st.Stream), float64(st.Trims))
		}))
	// A gauge, not a counter: a wholesale state restore replaces streams,
	// whose generations restart at 1.
	reg.RegisterGaugeFunc("qbets_forecast_generation",
		"Per-stream forecast snapshot generation: 1 at stream creation, +1 per applied observation, batch chunk, or replay group. A stalled generation under ingest means the read plane is serving stale bounds.",
		perStream(func(st StreamStatus, emit func(string, float64)) {
			emit(obs.Labels("stream", st.Stream), float64(st.Generation))
		}))
	return s
}

// perStreamMetricsCap is the registry size past which per-stream metric
// series stop being emitted: a million-stream registry would otherwise
// produce a multi-hundred-megabyte scrape.
const perStreamMetricsCap = 10000

// Service returns the underlying Service.
func (s *Server) Service() *Service { return s.svc }

// Metrics returns the server's metric registry, for mounting on a
// separate listener (qbets-serve's -metrics-addr).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// ObserveRecord is the POST /v1/observe payload.
type ObserveRecord struct {
	Queue       string  `json:"queue"`
	Procs       int     `json:"procs"`
	WaitSeconds float64 `json:"wait_seconds"`
}

// ForecastResponse is the GET /v1/forecast payload.
type ForecastResponse struct {
	Queue        string  `json:"queue"`
	Procs        int     `json:"procs"`
	Quantile     float64 `json:"quantile"`
	Confidence   float64 `json:"confidence"`
	BoundSeconds float64 `json:"bound_seconds"`
	OK           bool    `json:"ok"`
	Observations int     `json:"observations"`
}

// ProfileEntry is one element of the GET /v1/profile payload.
type ProfileEntry struct {
	Quantile   float64 `json:"quantile"`
	Confidence float64 `json:"confidence"`
	Side       string  `json:"side"`
	Seconds    float64 `json:"seconds"`
	OK         bool    `json:"ok"`
}

// StreamStatusResponse is one stream's entry in the GET /v1/status payload.
type StreamStatusResponse struct {
	Stream          string  `json:"stream"`
	Observations    int     `json:"observations"`
	MinObservations int     `json:"min_observations"`
	BoundSeconds    float64 `json:"bound_seconds"`
	BoundOK         bool    `json:"bound_ok"`
	// HitRate is the rolling correctness over the last Resolved resolved
	// predictions; meaningful when Resolved > 0.
	HitRate          float64 `json:"hit_rate"`
	Resolved         int     `json:"resolved"`
	LifetimeHits     uint64  `json:"lifetime_hits"`
	LifetimeResolved uint64  `json:"lifetime_resolved"`
	Trims            int     `json:"trims"`
	LastTrimUnix     int64   `json:"last_trim_unix,omitempty"`
}

// StatusResponse is the GET /v1/status payload. TotalStreams is the full
// registry size; Streams may be a prefix of it when the request carried a
// limit parameter (streams come back in key order, so the prefix is
// deterministic).
type StatusResponse struct {
	Quantile     float64                `json:"quantile"`
	Confidence   float64                `json:"confidence"`
	TotalStreams int                    `json:"total_streams"`
	Streams      []StreamStatusResponse `json:"streams"`
}

// ErrorResponse is the JSON body every error response carries.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ServeHTTP implements http.Handler. A panic in any handler is recovered
// here — counted, answered with a 500 if nothing was written yet — so one
// poisoned request cannot take down the connection's goroutine with the
// default net/http crash trace as the only evidence.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	endpoint := "other"
	defer func() {
		if p := recover(); p != nil {
			s.panics.Inc()
			sw.code = http.StatusInternalServerError
			if !sw.wrote {
				writeError(sw, http.StatusInternalServerError, "internal error: %v", p)
			}
		}
		s.requestCounter(endpoint, sw.code).Inc()
	}()
	switch r.URL.Path {
	case "/v1/observe":
		endpoint = "observe"
		s.handleObserve(sw, r)
	case "/v1/forecast":
		endpoint = "forecast"
		s.handleForecast(sw, r)
	case "/v1/profile":
		endpoint = "profile"
		s.handleProfile(sw, r)
	case "/v1/status":
		endpoint = "status"
		s.handleStatus(sw, r)
	case "/v1/whatif":
		endpoint = "whatif"
		s.handleWhatif(sw, r)
	case "/metrics":
		endpoint = "metrics"
		s.reg.Handler().ServeHTTP(sw, r)
	case "/healthz":
		endpoint = "healthz"
		sw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// A replicated node reports unhealthy when its role is degraded —
		// a fenced ex-leader must stop taking writes, a follower lagging
		// past its bound must stop serving stale reads — so a balancer
		// drains it until replication recovers.
		if rs := s.repl.Load(); rs != nil && rs.degraded != nil && rs.degraded() {
			sw.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			sw.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(sw, "degraded: %s replication\n", rs.role)
		} else {
			fmt.Fprintln(sw, "ok")
		}
	default:
		writeError(sw, http.StatusNotFound, "no such endpoint: %s", r.URL.Path)
	}
}

// statusWriter records the status code a handler sends and whether the
// header has gone out (after which a recovered panic can't send a 500).
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// internedQueue is a string whose JSON decoding routes through a bounded
// intern cache keyed by the raw token bytes, so repeated queue names — the
// overwhelmingly common case in scheduler-log ingest — decode without
// allocating a fresh string per record. Decoding semantics are exactly
// encoding/json's for a plain string field: cache misses delegate to
// json.Unmarshal and memoize its result, so identical raw bytes always
// yield the identical value, and anything the standard decoder rejects is
// rejected here too.
type internedQueue string

// maxInternedQueues caps the intern cache; a flood of distinct queue names
// (an attack, not a workload) degrades to per-record allocation, never to
// unbounded memory.
const maxInternedQueues = 4096

var queueInterner = struct {
	sync.RWMutex
	m map[string]string
}{m: make(map[string]string)}

func (q *internedQueue) UnmarshalJSON(b []byte) error {
	// JSON null leaves the value unchanged, exactly as encoding/json
	// treats a plain string field.
	if string(b) == "null" {
		return nil
	}
	v, err := internQueueToken(b)
	if err != nil {
		return err
	}
	*q = internedQueue(v)
	return nil
}

// observeWire mirrors ObserveRecord for the decode hot path, with the
// queue routed through the intern cache. Kept separate so the public
// ObserveRecord type stays a plain-string struct.
type observeWire struct {
	Queue       internedQueue `json:"queue"`
	Procs       int           `json:"procs"`
	WaitSeconds float64       `json:"wait_seconds"`
}

// maxPooledObserveRecords bounds the record capacity a pooled batch may
// retain between requests.
const maxPooledObserveRecords = 8192

// observeBatch is the pooled per-request state of handleObserve: the
// decoded records, the peek buffer, and the scratch record the streaming
// decoder fills — so in steady state the ingest path allocates only what
// encoding/json's decoder itself needs, nothing per record.
type observeBatch struct {
	recs []ObserveRecord
	br   *bufio.Reader
	wire observeWire
}

var observeBatchPool = sync.Pool{
	New: func() any { return &observeBatch{br: bufio.NewReaderSize(nil, 4096)} },
}

func (b *observeBatch) release() {
	b.br.Reset(nil)
	b.wire = observeWire{}
	clear(b.recs)
	b.recs = b.recs[:0]
	if cap(b.recs) > maxPooledObserveRecords {
		b.recs = nil
	}
	observeBatchPool.Put(b)
}

// peekNonSpace returns the first non-whitespace byte without consuming it,
// skipping exactly the JSON whitespace set (space, tab, CR, LF).
func peekNonSpace(br *bufio.Reader) (byte, error) {
	for {
		c, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		switch c {
		case ' ', '\t', '\r', '\n':
			continue
		}
		return c, br.UnreadByte()
	}
}

// writeDecodeError maps a body-decode failure to its 400: the body-cap
// error gets its dedicated message, everything else is formatted with the
// caller's context ("bad JSON", "bad JSON object", "bad JSON array").
func writeDecodeError(w http.ResponseWriter, err error, format string) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, http.StatusBadRequest, "body exceeds %d bytes; split the batch", tooBig.Limit)
		return
	}
	writeError(w, http.StatusBadRequest, format, err)
}

// handleObserve ingests a single record or an array of records: the first
// JSON value in the body (trailing bytes are ignored), decoded in one
// streaming pass with validation fused into the walk, then applied through
// the service's batch path. Nothing is ingested unless the whole payload
// decodes and validates — partial application happens only when the
// observation log degrades mid-batch, reported as a 503 with Retry-After
// and the index of the first unapplied record.
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	b := observeBatchPool.Get().(*observeBatch)
	defer b.release()
	b.br.Reset(http.MaxBytesReader(w, r.Body, maxObserveBody))
	first, err := peekNonSpace(b.br)
	if err != nil {
		s.observeErrors.Inc()
		writeDecodeError(w, err, "bad JSON: %v")
		return
	}
	dec := json.NewDecoder(b.br)
	if first == '[' {
		if _, err := dec.Token(); err != nil { // consume '['
			s.observeErrors.Inc()
			writeDecodeError(w, err, "bad JSON array: %v")
			return
		}
		for i := 0; dec.More(); i++ {
			b.wire = observeWire{}
			if err := dec.Decode(&b.wire); err != nil {
				s.observeErrors.Inc()
				writeDecodeError(w, err, "bad JSON array: %v")
				return
			}
			if !validWire(&b.wire) {
				s.observeErrors.Inc()
				writeError(w, http.StatusBadRequest, "record %d: queue required and wait_seconds must be finite and >= 0", i)
				return
			}
			b.recs = append(b.recs, ObserveRecord{Queue: string(b.wire.Queue), Procs: b.wire.Procs, WaitSeconds: b.wire.WaitSeconds})
		}
		if _, err := dec.Token(); err != nil { // consume ']'
			s.observeErrors.Inc()
			writeDecodeError(w, err, "bad JSON array: %v")
			return
		}
	} else {
		b.wire = observeWire{}
		if err := dec.Decode(&b.wire); err != nil {
			s.observeErrors.Inc()
			writeDecodeError(w, err, "bad JSON object: %v")
			return
		}
		if !validWire(&b.wire) {
			s.observeErrors.Inc()
			writeError(w, http.StatusBadRequest, "record 0: queue required and wait_seconds must be finite and >= 0")
			return
		}
		b.recs = append(b.recs, ObserveRecord{Queue: string(b.wire.Queue), Procs: b.wire.Procs, WaitSeconds: b.wire.WaitSeconds})
	}
	applied, err := s.svc.ObserveBatch(b.recs)
	s.observations.Add(uint64(applied))
	if err != nil {
		if errors.Is(err, ErrReadOnly) || errors.Is(err, ErrNotLeader) {
			// Records before the reported index were logged and applied; the
			// client should retry the remainder once appends heal (or against
			// the leader). The hint is derived, not fixed: the WAL's sync
			// probe interval or the replication backoff, whichever is longer.
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		s.observeErrors.Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func validWire(rec *observeWire) bool {
	return rec.Queue != "" && !math.IsNaN(rec.WaitSeconds) && !math.IsInf(rec.WaitSeconds, 0) && rec.WaitSeconds >= 0
}

// handleForecast serves the read plane's hot endpoint. GET answers one
// (queue, procs) shape; POST answers a whole batch of shapes in one
// request (see handleForecastBatch). Both run lock-free against the
// service's published snapshots and render through the pooled append
// encoder, so the steady-state cost is decode + two atomic loads + one
// buffer write.
func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		s.handleForecastBatch(w, r)
		return
	}
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET or POST required")
		return
	}
	queue, procs, ok := s.shapeParams(w, r)
	if !ok {
		return
	}
	start := time.Now()
	st, known := s.svc.StreamStats(queue, procs)
	s.predLatency.Observe(time.Since(start).Seconds())
	if !known {
		writeError(w, http.StatusNotFound, "unknown stream for queue %q, procs %d: no observations yet", queue, procs)
		return
	}
	rb := getResponseBuf()
	rb.b = appendForecastHead(rb.b, queue, procs)
	rb.b = append(rb.b, s.levelsJSON...)
	rb.b = appendForecastTail(rb.b, st.BoundSeconds, st.BoundOK, st.Observations)
	rb.b = append(rb.b, '\n')
	writeRawJSON(w, rb.b)
	rb.release()
}

// maxForecastBody caps the POST /v1/forecast request body; thousands of
// shapes fit comfortably.
const maxForecastBody = 1 << 20

// forecastShape is one resolved (queue, procs) request within a batch.
type forecastShape struct {
	queue string
	procs int
}

// maxPooledForecastShapes bounds the shape capacity a pooled batch may
// retain between requests; maxPooledForecastBody does the same for the
// body buffer.
const (
	maxPooledForecastShapes = 8192
	maxPooledForecastBody   = 1 << 18
)

// forecastBatch is the pooled per-request state of handleForecastBatch:
// the raw body and the decoded shapes, both capacity-retained so the
// steady-state batch path allocates nothing per request.
type forecastBatch struct {
	shapes []forecastShape
	buf    []byte
}

var forecastBatchPool = sync.Pool{
	New: func() any { return &forecastBatch{buf: make([]byte, 0, 4096)} },
}

func (b *forecastBatch) release() {
	clear(b.shapes)
	b.shapes = b.shapes[:0]
	if cap(b.shapes) > maxPooledForecastShapes {
		b.shapes = nil
	}
	b.buf = b.buf[:0]
	if cap(b.buf) > maxPooledForecastBody {
		b.buf = nil
	}
	forecastBatchPool.Put(b)
}

// readBody slurps r into the pooled buffer, growing it as needed.
func (b *forecastBatch) readBody(r io.Reader) ([]byte, error) {
	for {
		if len(b.buf) == cap(b.buf) {
			b.buf = append(b.buf, 0)[:len(b.buf)]
		}
		n, err := r.Read(b.buf[len(b.buf):cap(b.buf)])
		b.buf = b.buf[:len(b.buf)+n]
		if err == io.EOF {
			return b.buf, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// handleForecastBatch answers POST /v1/forecast: a JSON array of
// {queue, procs} shapes, answered by a JSON array of ForecastResponse in
// the same order — the shape an urgent-workload scheduler polls before
// placement, quoting bounds for many candidate job shapes in one round
// trip. Unlike the single-shape GET, an unknown stream is not a 404: its
// entry comes back with ok=false and zero observations, so one cold shape
// cannot fail the whole batch. procs omitted or 0 defaults to 1, matching
// the GET parameter.
func (s *Server) handleForecastBatch(w http.ResponseWriter, r *http.Request) {
	b := forecastBatchPool.Get().(*forecastBatch)
	defer b.release()
	body, err := b.readBody(http.MaxBytesReader(w, r.Body, maxForecastBody))
	if err != nil {
		writeDecodeError(w, err, "bad JSON: %v")
		return
	}
	i := 0
	for i < len(body) && (body[i] == ' ' || body[i] == '\t' || body[i] == '\r' || body[i] == '\n') {
		i++
	}
	if i == len(body) {
		writeError(w, http.StatusBadRequest, "bad JSON: %v", errShapeEOF)
		return
	}
	if body[i] != '[' {
		writeError(w, http.StatusBadRequest, "batch forecast body must be a JSON array of {queue, procs} shapes")
		return
	}
	b.shapes, err = parseForecastShapes(b.shapes[:0], body[i:])
	if err != nil {
		var fe *shapeFieldError
		if errors.As(err, &fe) {
			writeError(w, http.StatusBadRequest, "%v", err)
		} else {
			writeError(w, http.StatusBadRequest, "bad JSON array: %v", err)
		}
		return
	}
	s.forecastBatchSize.Observe(float64(len(b.shapes)))
	rb := getResponseBuf()
	rb.b = append(rb.b, '[')
	start := time.Now()
	for i := range b.shapes {
		sh := &b.shapes[i]
		if i > 0 {
			rb.b = append(rb.b, ',')
		}
		rb.b = appendForecastHead(rb.b, sh.queue, sh.procs)
		rb.b = append(rb.b, s.levelsJSON...)
		// An unknown stream degrades to ok=false with zero observations
		// rather than failing the batch; asking never creates a stream.
		if st, known := s.svc.StreamStats(sh.queue, sh.procs); known {
			rb.b = appendForecastTail(rb.b, st.BoundSeconds, st.BoundOK, st.Observations)
		} else {
			rb.b = appendForecastTail(rb.b, 0, false, 0)
		}
	}
	s.predLatency.Observe(time.Since(start).Seconds())
	rb.b = append(rb.b, ']', '\n')
	writeRawJSON(w, rb.b)
	rb.release()
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	queue, procs, ok := s.shapeParams(w, r)
	if !ok {
		return
	}
	start := time.Now()
	bounds := s.svc.Profile(queue, procs)
	s.predLatency.Observe(time.Since(start).Seconds())
	if bounds == nil {
		writeError(w, http.StatusNotFound, "unknown stream for queue %q, procs %d: no observations yet", queue, procs)
		return
	}
	// bounds is the published immutable snapshot slice — rendered in
	// place, never mutated.
	rb := getResponseBuf()
	rb.b = appendProfileEntries(rb.b, bounds)
	rb.b = append(rb.b, '\n')
	writeRawJSON(w, rb.b)
	rb.release()
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	// Stats walks the ordered index, so the response is already sorted by
	// stream key; limit stops the walk early — on a huge registry, asking
	// for the first 100 streams costs 100 statuses, not a million.
	limit := 0
	if l := queryParam(r.URL.RawQuery, "limit"); l != "" {
		v, err := strconv.Atoi(l)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		limit = v
	}
	stats := s.svc.StatsLimit(limit)
	streams := make([]StreamStatusResponse, len(stats))
	for i, st := range stats {
		streams[i] = StreamStatusResponse{
			Stream:           st.Stream,
			Observations:     st.Observations,
			MinObservations:  st.MinObservations,
			BoundSeconds:     st.BoundSeconds,
			BoundOK:          st.BoundOK,
			HitRate:          st.RollingHitRate,
			Resolved:         st.RollingResolved,
			LifetimeHits:     st.LifetimeHits,
			LifetimeResolved: st.LifetimeResolved,
			Trims:            st.Trims,
			LastTrimUnix:     st.LastTrimUnix,
		}
	}
	writeJSON(w, StatusResponse{
		Quantile:     s.svc.Quantile(),
		Confidence:   s.svc.Confidence(),
		TotalStreams: s.svc.NumStreams(),
		Streams:      streams,
	})
}

// SaveFile persists the server's accumulated state (all streams) to a
// file; safe to call while serving.
func (s *Server) SaveFile(path string) error {
	return s.svc.SaveFile(path)
}

// LoadFile replaces the server's state from a file written by SaveFile;
// safe to call while serving (in-flight requests finish against the old
// stream set).
func (s *Server) LoadFile(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return s.svc.UnmarshalBinary(blob)
}

// SaveShards persists the server's state as a sharded directory (the
// million-stream format; see SaveShards on Service). Safe while serving.
func (s *Server) SaveShards(dir string, shards int) error {
	return s.svc.SaveShards(dir, shards)
}

// LoadShards replaces the server's state from a sharded directory written
// by SaveShards; safe while serving. Streams are adopted cold and
// rehydrate on their first write.
func (s *Server) LoadShards(dir string) error {
	return s.svc.LoadShards(dir)
}

func (s *Server) shapeParams(w http.ResponseWriter, r *http.Request) (queue string, procs int, ok bool) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return "", 0, false
	}
	queue = queryParam(r.URL.RawQuery, "queue")
	if queue == "" {
		writeError(w, http.StatusBadRequest, "queue parameter required")
		return "", 0, false
	}
	procs = 1
	if p := queryParam(r.URL.RawQuery, "procs"); p != "" {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "procs must be a positive integer")
			return "", 0, false
		}
		procs = v
	}
	return queue, procs, true
}

// queryParam extracts the first value of key from a raw query string
// without materializing a url.Values map — the single-shape GETs are the
// read plane's hottest requests, and parsing two known keys by hand keeps
// them allocation-free in the common (unescaped) case. Escaped values fall
// back to url.QueryUnescape; pairs net/url would reject (embedded
// semicolons) are skipped, matching r.URL.Query()'s drop-on-error
// behavior.
func queryParam(raw, key string) string {
	for len(raw) > 0 {
		pair := raw
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			pair, raw = raw[:i], raw[i+1:]
		} else {
			raw = ""
		}
		if pair == "" || strings.IndexByte(pair, ';') >= 0 {
			continue
		}
		k, v := pair, ""
		if i := strings.IndexByte(pair, '='); i >= 0 {
			k, v = pair[:i], pair[i+1:]
		}
		if k != key {
			if strings.IndexByte(k, '%') < 0 && strings.IndexByte(k, '+') < 0 {
				continue
			}
			u, err := url.QueryUnescape(k)
			if err != nil || u != key {
				continue
			}
		}
		if strings.IndexByte(v, '%') >= 0 || strings.IndexByte(v, '+') >= 0 {
			u, err := url.QueryUnescape(v)
			if err != nil {
				continue // matches url.Values: malformed pair is dropped
			}
			v = u
		}
		return v
	}
	return ""
}

// contentTypeJSON is the shared Content-Type header value for the
// pre-rendered read-plane responses; assigning the cached slice instead of
// Header().Set avoids the per-response []string allocation.
var contentTypeJSON = []string{"application/json"}

// writeRawJSON sends a pre-rendered JSON body (already newline-terminated,
// matching json.Encoder output byte for byte).
func writeRawJSON(w http.ResponseWriter, body []byte) {
	w.Header()["Content-Type"] = contentTypeJSON
	_, _ = w.Write(body)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: fmt.Sprintf(format, args...)})
}
