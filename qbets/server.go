package qbets

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
)

// Server exposes a Service over HTTP with a small JSON API, the deployment
// shape the paper anticipates ("a user and scheduling tool" fed periodic
// scheduler-log dumps):
//
//	POST /v1/observe   {"queue":"normal","procs":8,"wait_seconds":123}
//	                   (or a JSON array of such records)
//	GET  /v1/forecast?queue=normal&procs=8
//	GET  /v1/profile?queue=normal&procs=8
//	GET  /v1/status
//
// Server is safe for concurrent use; the underlying forecasters are
// serialized behind one mutex (prediction is microseconds, so a single
// lock is not a bottleneck at scheduler-log rates).
type Server struct {
	mu  sync.Mutex
	svc *Service

	quantile   float64
	confidence float64
}

// NewServer returns an HTTP server around a fresh Service. splitByProcs
// and opts behave as in NewService.
func NewServer(splitByProcs bool, opts ...Option) *Server {
	// Recover the quantile/confidence for reporting in responses.
	c := config{quantile: 0.95, confidence: 0.95}
	for _, o := range opts {
		o(&c)
	}
	return &Server{
		svc:        NewService(splitByProcs, opts...),
		quantile:   c.quantile,
		confidence: c.confidence,
	}
}

// ObserveRecord is the POST /v1/observe payload.
type ObserveRecord struct {
	Queue       string  `json:"queue"`
	Procs       int     `json:"procs"`
	WaitSeconds float64 `json:"wait_seconds"`
}

// ForecastResponse is the GET /v1/forecast payload.
type ForecastResponse struct {
	Queue        string  `json:"queue"`
	Procs        int     `json:"procs"`
	Quantile     float64 `json:"quantile"`
	Confidence   float64 `json:"confidence"`
	BoundSeconds float64 `json:"bound_seconds"`
	OK           bool    `json:"ok"`
	Observations int     `json:"observations"`
}

// ProfileEntry is one element of the GET /v1/profile payload.
type ProfileEntry struct {
	Quantile   float64 `json:"quantile"`
	Confidence float64 `json:"confidence"`
	Side       string  `json:"side"`
	Seconds    float64 `json:"seconds"`
	OK         bool    `json:"ok"`
}

// StatusResponse is the GET /v1/status payload.
type StatusResponse struct {
	Streams []string `json:"streams"`
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/observe":
		s.handleObserve(w, r)
	case "/v1/forecast":
		s.handleForecast(w, r)
	case "/v1/profile":
		s.handleProfile(w, r)
	case "/v1/status":
		s.handleStatus(w, r)
	default:
		http.NotFound(w, r)
	}
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	dec := json.NewDecoder(r.Body)
	// Accept a single record or an array.
	var raw json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		http.Error(w, fmt.Sprintf("bad JSON: %v", err), http.StatusBadRequest)
		return
	}
	var records []ObserveRecord
	if len(raw) > 0 && raw[0] == '[' {
		if err := json.Unmarshal(raw, &records); err != nil {
			http.Error(w, fmt.Sprintf("bad JSON array: %v", err), http.StatusBadRequest)
			return
		}
	} else {
		var one ObserveRecord
		if err := json.Unmarshal(raw, &one); err != nil {
			http.Error(w, fmt.Sprintf("bad JSON object: %v", err), http.StatusBadRequest)
			return
		}
		records = append(records, one)
	}
	for i, rec := range records {
		if rec.Queue == "" || rec.WaitSeconds < 0 {
			http.Error(w, fmt.Sprintf("record %d: queue required and wait_seconds must be >= 0", i), http.StatusBadRequest)
			return
		}
	}
	s.mu.Lock()
	for _, rec := range records {
		s.svc.Observe(rec.Queue, rec.Procs, rec.WaitSeconds)
	}
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	queue, procs, ok := s.shapeParams(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	bound, has := s.svc.Forecast(queue, procs)
	n := s.svc.Observations(queue, procs)
	s.mu.Unlock()
	writeJSON(w, ForecastResponse{
		Queue:        queue,
		Procs:        procs,
		Quantile:     s.quantile,
		Confidence:   s.confidence,
		BoundSeconds: bound,
		OK:           has,
		Observations: n,
	})
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	queue, procs, ok := s.shapeParams(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	bounds := s.svc.Profile(queue, procs)
	s.mu.Unlock()
	out := make([]ProfileEntry, len(bounds))
	for i, b := range bounds {
		side := "upper"
		if b.Lower {
			side = "lower"
		}
		out[i] = ProfileEntry{
			Quantile:   b.Quantile,
			Confidence: b.Confidence,
			Side:       side,
			Seconds:    b.Seconds,
			OK:         b.OK,
		}
	}
	writeJSON(w, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	streams := s.svc.Queues()
	s.mu.Unlock()
	sort.Strings(streams)
	writeJSON(w, StatusResponse{Streams: streams})
}

// SaveFile persists the server's accumulated state (all streams) to a
// file; safe to call while serving.
func (s *Server) SaveFile(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.svc.SaveFile(path)
}

// LoadFile replaces the server's state from a file written by SaveFile;
// safe to call while serving.
func (s *Server) LoadFile(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.svc.UnmarshalBinary(blob)
}

func (s *Server) shapeParams(w http.ResponseWriter, r *http.Request) (queue string, procs int, ok bool) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return "", 0, false
	}
	queue = r.URL.Query().Get("queue")
	if queue == "" {
		http.Error(w, "queue parameter required", http.StatusBadRequest)
		return "", 0, false
	}
	procs = 1
	if p := r.URL.Query().Get("procs"); p != "" {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			http.Error(w, "procs must be a positive integer", http.StatusBadRequest)
			return "", 0, false
		}
		procs = v
	}
	return queue, procs, true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
