package qbets

import (
	"math"
	"math/rand"
	"testing"
)

// These tests check the self-monitoring hit-rate accounting against the
// paper's correctness criterion (Tables 3–7): on a stationary stream, the
// fraction of resolved predictions whose wait falls within the quoted
// bound must converge to at least the target confidence — here measured
// online by the Service's per-stream monitor rather than offline by the
// evaluation harness.

func TestHitRateConvergesToTargetConfidence(t *testing.T) {
	svc := NewService(false, WithSeed(42))
	rng := rand.New(rand.NewSource(42))
	const n = 6000
	for i := 0; i < n; i++ {
		// Stationary log-normal waits, the paper's canonical heavy-tailed
		// queue-delay shape.
		svc.Observe("stable", 1, 300*math.Exp(rng.NormFloat64()))
	}
	st, ok := svc.StreamStats("stable", 1)
	if !ok {
		t.Fatal("stream missing")
	}
	if st.TargetQuantile != 0.95 || st.TargetConfidence != 0.95 {
		t.Fatalf("targets = %+v", st)
	}
	if st.LifetimeResolved != uint64(n-st.MinObservations) {
		t.Fatalf("resolved = %d, want %d", st.LifetimeResolved, n-st.MinObservations)
	}
	lifetime := float64(st.LifetimeHits) / float64(st.LifetimeResolved)
	// A 0.95-quantile bound at 95% confidence is conservative: the hit
	// rate should sit at or above ~0.95, with a small tolerance for the
	// early low-history phase and binomial noise.
	if lifetime < st.TargetConfidence-0.02 {
		t.Errorf("lifetime hit rate %.4f below target %.2f", lifetime, st.TargetConfidence)
	}
	if lifetime > 1 {
		t.Errorf("lifetime hit rate %.4f impossible", lifetime)
	}
	if st.RollingResolved != hitRateWindow {
		t.Errorf("rolling window %d, want %d", st.RollingResolved, hitRateWindow)
	}
	if st.RollingHitRate < st.TargetConfidence-0.03 {
		t.Errorf("rolling hit rate %.4f below target %.2f", st.RollingHitRate, st.TargetConfidence)
	}
}

func TestHitRateTracksQuantileNotOne(t *testing.T) {
	// A median bound must produce a hit rate near the median, not
	// saturate at 1 — evidence the monitor scores the configured quantile
	// rather than "bound always held".
	svc := NewService(false, WithQuantile(0.5), WithConfidence(0.95), WithSeed(7))
	rng := rand.New(rand.NewSource(7))
	const n = 6000
	for i := 0; i < n; i++ {
		svc.Observe("median", 1, 300*math.Exp(rng.NormFloat64()))
	}
	st, ok := svc.StreamStats("median", 1)
	if !ok {
		t.Fatal("stream missing")
	}
	rate := float64(st.LifetimeHits) / float64(st.LifetimeResolved)
	// The 95%-confidence upper bound on the median sits a little above
	// the true median, so the hit rate lands above 0.5 but nowhere near
	// the 0.95 the default configuration produces.
	if rate < 0.5 || rate > 0.75 {
		t.Errorf("median-bound hit rate %.4f outside [0.5, 0.75]", rate)
	}
}

func TestHitRateRollingWindowRecovers(t *testing.T) {
	// After a regime change the rolling rate must reflect the new regime
	// once the window refills — unlike the lifetime rate, which the old
	// regime keeps diluted.
	svc := NewService(false, WithSeed(5))
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		svc.Observe("shift", 1, 60*math.Exp(rng.NormFloat64()))
	}
	// Tenfold level shift; the change-point detector will trim and the
	// forecaster re-learns.
	for i := 0; i < 3000; i++ {
		svc.Observe("shift", 1, 600*math.Exp(rng.NormFloat64()))
	}
	st, ok := svc.StreamStats("shift", 1)
	if !ok {
		t.Fatal("stream missing")
	}
	if st.Trims == 0 {
		t.Error("tenfold shift produced no change-point trim")
	}
	if st.LastTrimUnix == 0 {
		t.Error("trim time not recorded")
	}
	if st.RollingHitRate < st.TargetConfidence-0.03 {
		t.Errorf("rolling hit rate %.4f has not recovered after shift (target %.2f)", st.RollingHitRate, st.TargetConfidence)
	}
}

func TestAutoServiceHitRateMonitoring(t *testing.T) {
	a := NewAutoService(2, 400, WithSeed(9))
	rng := rand.New(rand.NewSource(9))
	observe := func(n int) {
		for i := 0; i < n; i++ {
			// Two shape populations with different wait scales.
			if i%2 == 0 {
				a.Observe(2, 0, 30*math.Exp(rng.NormFloat64()))
			} else {
				a.Observe(64, 0, 3000*math.Exp(rng.NormFloat64()))
			}
		}
	}
	observe(300)
	if a.Stats() != nil {
		t.Fatal("stats available during warm-up")
	}
	observe(5700)
	stats := a.Stats()
	if len(stats) != 2 {
		t.Fatalf("categories = %d", len(stats))
	}
	for _, cs := range stats {
		if !cs.BoundOK {
			t.Errorf("category %d has no bound after 6000 observations", cs.Category)
			continue
		}
		if cs.RollingResolved == 0 {
			t.Errorf("category %d resolved no predictions", cs.Category)
			continue
		}
		if cs.RollingHitRate < 0.95-0.03 {
			t.Errorf("category %d rolling hit rate %.4f below target", cs.Category, cs.RollingHitRate)
		}
	}
}
