package qbets

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// Sharded service persistence: the single-blob format (state.go) JSON-
// encodes every stream into one document, which at the million-stream
// scale means one giant allocation, one giant write, and a restore that
// unmarshals a million forecasters before serving byte one. The sharded
// format spreads the registry over N shard files written and read in
// parallel, and — the real scale win — restores every stream *cold*: the
// per-stream summary core published in the shard file becomes the
// stream's forecast snapshot directly, the serialized forecaster blob is
// kept as the cold blob, and no BMBP state is unmarshaled until a
// stream's first write rehydrates it (evict.go). Loading 1M streams costs
// 1M small struct builds, not 1M history decodes.
//
// On-disk layout (dir is a directory, not a file):
//
//	dir/CURRENT            — name of the live generation directory
//	dir/gen-<unixnano>/
//	    manifest.json      — service-level header + shard count
//	    shard-0000.json …  — the streams whose key hashes into the shard
//
// A save writes a complete new generation, fsyncs it, then atomically
// republishes CURRENT — the same crash story as writeFileAtomic, one
// level up. Old generations are deleted best-effort after the swap;
// QuarantineStateFile renames the whole directory, so corrupt-state
// handling carries over unchanged.

// shardManifest is the service-level header of one saved generation.
type shardManifest struct {
	ByProcs  bool  `json:"by_procs"`
	NextSeed int64 `json:"next_seed"`
	Shards   int   `json:"shards"`
	Streams  int   `json:"streams"`
}

// shardStream is one stream in a shard file: the serialized forecaster
// plus the summary core a cold adoption needs to publish an exact forecast
// snapshot without decoding State.
type shardStream struct {
	State           []byte  `json:"state"`
	Seq             uint64  `json:"seq,omitempty"`
	Bound           float64 `json:"bound,omitempty"`
	BoundOK         bool    `json:"bound_ok,omitempty"`
	Observations    int     `json:"observations,omitempty"`
	MinObservations int     `json:"min_observations,omitempty"`
	Trims           int     `json:"trims,omitempty"`
	LastTrimUnix    int64   `json:"last_trim_unix,omitempty"`
}

const currentFile = "CURRENT"

// coreLocked captures a stream's summary core. Caller holds at least the
// stream's read lock. For a hydrated stream the forecaster is settled (the
// write paths' eager-refit invariant), so Forecast is a pure read; for a
// cold stream the published snapshot is exact — eviction publishes before
// dropping the forecaster.
func (st *stream) coreLocked() (blob []byte, core shardStream, err error) {
	if st.fc != nil {
		blob, err = st.fc.MarshalBinary()
		if err != nil {
			return nil, core, err
		}
		bound, ok := st.fc.Forecast()
		core = shardStream{
			Bound: bound, BoundOK: ok,
			Observations:    st.fc.Observations(),
			MinObservations: st.fc.MinObservations(),
			Trims:           st.fc.ChangePoints(),
			LastTrimUnix:    st.lastTrimUnix,
		}
	} else {
		blob = st.cold
		snap := st.snap.Load()
		core = shardStream{
			Bound: snap.boundSeconds, BoundOK: snap.boundOK,
			Observations:    snap.observations,
			MinObservations: snap.minObservations,
			Trims:           snap.trims,
			LastTrimUnix:    snap.lastTrimUnix,
		}
	}
	core.Seq = st.lastSeq
	return blob, core, nil
}

// SaveShards writes the service's state as a sharded generation under dir,
// creating dir if needed. Like SaveFile, a successful save compacts the
// attached WAL. Safe to call while serving: streams are read-locked one at
// a time.
func (s *Service) SaveShards(dir string, shards int) error {
	if shards < 1 {
		shards = 1
	}
	cut, rotated := s.preSaveRotate()
	streams := s.snapshotStreams()

	// Partition by key hash, then render shards in parallel — each worker
	// owns its shard's map wholesale, so no cross-worker coordination.
	parts := make([]map[string]*stream, shards)
	for i := range parts {
		parts[i] = make(map[string]*stream, len(streams)/shards+1)
	}
	for k, st := range streams {
		parts[keyHash(k)%uint32(shards)][k] = st
	}

	gen := fmt.Sprintf("gen-%d", time.Now().UnixNano())
	genDir := filepath.Join(dir, gen)
	if err := os.MkdirAll(genDir, 0o755); err != nil {
		return err
	}
	errs := make([]error, shards)
	parallel.ForEachIndex(shards, func(i int) {
		out := make(map[string]shardStream, len(parts[i]))
		for k, st := range parts[i] {
			core, err := coreOf(k, st)
			if err != nil {
				errs[i] = err
				return
			}
			out[k] = core
		}
		doc, err := json.Marshal(out)
		if err != nil {
			errs[i] = err
			return
		}
		errs[i] = writeFileAtomic(filepath.Join(genDir, shardFileName(i)), doc)
	})
	if err := errors.Join(errs...); err != nil {
		os.RemoveAll(genDir)
		return err
	}
	man, err := json.Marshal(shardManifest{
		ByProcs:  s.byProcs.Load(),
		NextSeed: s.nextSeed.Load(),
		Shards:   shards,
		Streams:  len(streams),
	})
	if err != nil {
		os.RemoveAll(genDir)
		return err
	}
	if err := writeFileAtomic(filepath.Join(genDir, "manifest.json"), man); err != nil {
		os.RemoveAll(genDir)
		return err
	}
	// Publish: CURRENT names the new generation. writeFileAtomic fsyncs
	// the file and dir, so after this returns a crash recovers the new
	// generation, before it the old one — never a torn mix.
	if err := writeFileAtomic(filepath.Join(dir, currentFile), []byte(gen+"\n")); err != nil {
		os.RemoveAll(genDir)
		return err
	}
	// Old generations are garbage now; deleting them is best-effort.
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			if e.IsDir() && strings.HasPrefix(e.Name(), "gen-") && e.Name() != gen {
				os.RemoveAll(filepath.Join(dir, e.Name()))
			}
		}
	}
	s.postSaveCompact(cut, rotated)
	return nil
}

func shardFileName(i int) string { return fmt.Sprintf("shard-%04d.json", i) }

// coreOf renders one stream's saved core under its read lock — the unit
// both the sharded saver and the replication snapshot serialize.
func coreOf(k string, st *stream) (shardStream, error) {
	st.mu.RLock()
	blob, core, err := st.coreLocked()
	st.mu.RUnlock()
	if err != nil {
		return shardStream{}, fmt.Errorf("qbets: stream %q: %w", k, err)
	}
	core.State = blob
	return core, nil
}

// adoptColdStream builds an evicted stream straight from its saved core:
// the published snapshot comes from the summary fields and the serialized
// forecaster stays cold until the stream's first write. O(1) per stream —
// no history decode, no refit.
func (s *Service) adoptColdStream(key string, core shardStream) *stream {
	st := &stream{
		key:          key,
		hit:          obs.NewRollingRate(hitRateWindow),
		cold:         core.State,
		trimsSeen:    core.Trims,
		lastTrimUnix: core.LastTrimUnix,
		lastSeq:      core.Seq,
	}
	st.evicted.Store(true)
	st.lastTouch.Store(s.clock.Load())
	st.snap.Store(&forecastSnapshot{
		gen:             1,
		boundSeconds:    core.Bound,
		boundOK:         core.BoundOK,
		observations:    core.Observations,
		minObservations: core.MinObservations,
		trims:           core.Trims,
		lastTrimUnix:    core.LastTrimUnix,
	})
	return st
}

// LoadServiceShards restores a Service from a sharded state directory
// written by SaveShards. Every stream is adopted cold; splitByProcs and
// opts apply to streams created after the restore, as with
// LoadServiceFile.
func LoadServiceShards(dir string, splitByProcs bool, opts ...Option) (*Service, error) {
	s := NewService(splitByProcs, opts...)
	if err := s.LoadShards(dir); err != nil {
		return nil, err
	}
	return s, nil
}

// LoadShards restores sharded state into the receiver, replacing the
// current stream set wholesale (the directory-format analogue of
// UnmarshalBinary). Safe while serving: readers mid-flight finish against
// the old stream set.
func (s *Service) LoadShards(dir string) error {
	cur, err := os.ReadFile(filepath.Join(dir, currentFile))
	if err != nil {
		return err
	}
	gen := strings.TrimSpace(string(cur))
	if gen == "" || strings.Contains(gen, "/") {
		return fmt.Errorf("qbets: %w: bad CURRENT %q", ErrCorruptState, gen)
	}
	genDir := filepath.Join(dir, gen)
	manDoc, err := os.ReadFile(filepath.Join(genDir, "manifest.json"))
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("qbets: %w: %v", ErrCorruptState, err)
		}
		return err
	}
	var man shardManifest
	if err := json.Unmarshal(manDoc, &man); err != nil {
		return fmt.Errorf("qbets: %w: manifest: %v", ErrCorruptState, err)
	}
	if man.Shards < 1 {
		return fmt.Errorf("qbets: %w: manifest shards=%d", ErrCorruptState, man.Shards)
	}
	shardMaps := make([]map[string]shardStream, man.Shards)
	errs := make([]error, man.Shards)
	parallel.ForEachIndex(man.Shards, func(i int) {
		doc, err := os.ReadFile(filepath.Join(genDir, shardFileName(i)))
		if err != nil {
			if os.IsNotExist(err) {
				errs[i] = fmt.Errorf("qbets: %w: %v", ErrCorruptState, err)
			} else {
				errs[i] = err
			}
			return
		}
		var m map[string]shardStream
		if err := json.Unmarshal(doc, &m); err != nil {
			errs[i] = fmt.Errorf("qbets: %w: %s: %v", ErrCorruptState, shardFileName(i), err)
			return
		}
		shardMaps[i] = m
	})
	if err := errors.Join(errs...); err != nil {
		return err
	}
	restored := make(map[string]*stream, man.Streams)
	for _, m := range shardMaps {
		for k, core := range m {
			restored[k] = s.adoptColdStream(k, core)
		}
	}
	s.byProcs.Store(man.ByProcs)
	s.nextSeed.Store(man.NextSeed)
	s.replaceStreams(restored)
	return nil
}

// IsShardedStateDir reports whether path looks like a sharded state
// directory (has a CURRENT file) — the loader-selection hook for callers
// that accept either format.
func IsShardedStateDir(path string) bool {
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		return false
	}
	_, err = os.Stat(filepath.Join(path, currentFile))
	return err == nil
}
