package qbets

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// Read-plane benchmarks for the lock-free forecast path. Each pair runs
// the shipping implementation against a baseline reproducing the previous
// architecture, so BENCH_PR5.json records what the RCU snapshots bought:
//
//	go test -run '^$' -bench 'ServiceForecast|ReadWhileIngest|ServerForecast' -cpu 1,4 -benchmem ./qbets/
//
// The baselines are honest reconstructions, not strawmen: the same shard
// map and per-stream RWMutex the write path still uses, with the bound
// recomputed under the read lock — exactly how Forecast answered before
// snapshots were published.

// forecastRWMutexBaseline reproduces the pre-snapshot read path: build the
// stream key (a concat in by-procs mode), walk the shard under its RLock,
// then compute the bound under the stream RLock — sharing cache lines and
// lock words with writers.
func (s *Service) forecastRWMutexBaseline(queue string, procs int) (float64, bool) {
	key := s.key(queue, procs)
	sh := &s.shards[shardOf(key)]
	sh.mu.RLock()
	st := sh.m[key]
	sh.mu.RUnlock()
	if st == nil {
		return 0, false
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.fc.Forecast()
}

func prewarmReadService(b *testing.B) *Service {
	b.Helper()
	svc := NewService(false, WithSeed(1))
	for i := 0; i < 500; i++ {
		if err := svc.Observe("normal", 1, float64(10+i%1000)); err != nil {
			b.Fatal(err)
		}
	}
	return svc
}

// BenchmarkServiceForecast is the acceptance benchmark for the tentpole:
// the lock-free variant must run at 0 allocs/op and never touch st.mu.
func BenchmarkServiceForecast(b *testing.B) {
	b.Run("lockfree", func(b *testing.B) {
		svc := prewarmReadService(b)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, ok := svc.Forecast("normal", 1); !ok {
					b.Fatal("forecast not ok")
				}
			}
		})
	})
	b.Run("rwmutex-baseline", func(b *testing.B) {
		svc := prewarmReadService(b)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, ok := svc.forecastRWMutexBaseline("normal", 1); !ok {
					b.Fatal("forecast not ok")
				}
			}
		})
	})
}

// BenchmarkServiceProfile: the profile read serves the published immutable
// slice — 0 allocs/op against the rebuild-per-call baseline.
func BenchmarkServiceProfile(b *testing.B) {
	b.Run("snapshot", func(b *testing.B) {
		svc := prewarmReadService(b)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if p := svc.Profile("normal", 1); p == nil {
					b.Fatal("nil profile")
				}
			}
		})
	})
	b.Run("recompute-baseline", func(b *testing.B) {
		svc := prewarmReadService(b)
		st := svc.lookup("normal")
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				st.mu.RLock()
				p := st.fc.Profile()
				st.mu.RUnlock()
				if p == nil {
					b.Fatal("nil profile")
				}
			}
		})
	})
}

// BenchmarkServiceReadWhileIngest is the storm the read plane exists for:
// a writer batch-ingesting into the same stream at full speed while
// parallel readers poll the bound. With RCU snapshots the readers never
// block behind refits; the baseline queues them on the stream RWMutex
// behind every batch apply. One op = one read.
func BenchmarkServiceReadWhileIngest(b *testing.B) {
	const ingestBatch = 64
	run := func(b *testing.B, read func(*Service) bool) {
		svc := prewarmReadService(b)
		batch := make([]ObserveRecord, ingestBatch)
		for i := range batch {
			batch[i] = ObserveRecord{Queue: "normal", Procs: 1, WaitSeconds: float64(10 + i%1000)}
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := svc.ObserveBatch(batch); err != nil {
					b.Error(err)
					return
				}
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if !read(svc) {
					b.Fatal("forecast not ok")
				}
			}
		})
		b.StopTimer()
		close(stop)
		wg.Wait()
	}
	b.Run("lockfree", func(b *testing.B) {
		run(b, func(svc *Service) bool { _, ok := svc.Forecast("normal", 1); return ok })
	})
	b.Run("rwmutex-baseline", func(b *testing.B) {
		run(b, func(svc *Service) bool { _, ok := svc.forecastRWMutexBaseline("normal", 1); return ok })
	})
}

// BenchmarkServerForecast compares the two ways to ask for 100 bounds over
// HTTP: one batch POST against 100 single-shape GETs. Both report
// records/s (shapes answered per second); the batch amortizes request
// setup, routing, instrumentation, and response framing across the whole
// shape set.
func BenchmarkServerForecast(b *testing.B) {
	const shapes = 100
	srv := NewServer(false, WithSeed(1))
	svc := srv.Service()
	var payload bytes.Buffer
	payload.WriteByte('[')
	urls := make([]string, shapes)
	for q := 0; q < shapes; q++ {
		name := fmt.Sprintf("q%02d", q)
		for i := 0; i < 120; i++ {
			if err := svc.Observe(name, 1, float64(10+i%500)); err != nil {
				b.Fatal(err)
			}
		}
		if q > 0 {
			payload.WriteByte(',')
		}
		fmt.Fprintf(&payload, `{"queue":%q,"procs":1}`, name)
		urls[q] = "/v1/forecast?queue=" + name + "&procs=1"
	}
	payload.WriteByte(']')
	body := payload.Bytes()

	// Sanity: the batch answers all shapes with real bounds.
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/forecast", bytes.NewReader(body)))
	if w.Code != http.StatusOK || strings.Count(w.Body.String(), `"ok":true`) != shapes {
		b.Fatalf("batch warmup: status %d, body %.200s", w.Code, w.Body.String())
	}

	sink := &nopResponseWriter{h: make(http.Header)}
	b.Run("batch100", func(b *testing.B) {
		rd := bytes.NewReader(nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rd.Reset(body)
			req := httptest.NewRequest(http.MethodPost, "/v1/forecast", rd)
			srv.ServeHTTP(sink, req)
		}
		b.ReportMetric(shapes*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
	b.Run("single-get-x100", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, u := range urls {
				req := httptest.NewRequest(http.MethodGet, u, nil)
				srv.ServeHTTP(sink, req)
			}
		}
		b.ReportMetric(shapes*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
}
