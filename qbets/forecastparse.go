package qbets

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Hand-rolled decoder for the POST /v1/forecast body: a JSON array of flat
// {queue, procs} objects. The general streaming decoder costs about a
// microsecond per shape in reflection and scanner-state overhead — two
// orders of magnitude more than answering the shape from the published
// snapshot — so the batch endpoint parses its one fixed wire shape
// directly. Semantics track encoding/json's decode into a
// {Queue string, Procs int} struct: field names match case-insensitively,
// unknown fields are skipped, duplicates take the last value, null leaves
// a field unset, queue strings route through the same intern cache as the
// observe path, and malformed input is rejected (the one relaxation:
// numbers inside skipped unknown-field values are scanned, not fully
// validated).

// shapeFieldError is a per-shape validation failure; the index names the
// offending array element so a client can fix exactly that shape.
type shapeFieldError struct {
	index int
	msg   string
}

func (e *shapeFieldError) Error() string { return fmt.Sprintf("shape %d: %s", e.index, e.msg) }

type shapeParser struct {
	buf []byte
	pos int
}

func (p *shapeParser) syntaxErr(msg string) error {
	return fmt.Errorf("%s at offset %d", msg, p.pos)
}

var errShapeEOF = fmt.Errorf("unexpected end of JSON input")

func (p *shapeParser) skipWS() {
	for p.pos < len(p.buf) {
		switch p.buf[p.pos] {
		case ' ', '\t', '\r', '\n':
			p.pos++
		default:
			return
		}
	}
}

// consume advances past c if it is the next byte.
func (p *shapeParser) consume(c byte) bool {
	if p.pos < len(p.buf) && p.buf[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

// parseForecastShapes appends the decoded shapes of a JSON array body to
// dst. The caller has already verified the first non-space byte is '[';
// bytes after the closing ']' are ignored, mirroring the observe path's
// first-JSON-value contract. procs is validated (0 defaults to 1) so every
// returned shape is servable as-is.
func parseForecastShapes(dst []forecastShape, buf []byte) ([]forecastShape, error) {
	p := shapeParser{buf: buf}
	p.skipWS()
	if !p.consume('[') {
		return dst, p.syntaxErr("expected '['")
	}
	p.skipWS()
	if p.consume(']') {
		return dst, nil
	}
	for i := 0; ; i++ {
		sh, err := p.parseShape(i)
		if err != nil {
			return dst, err
		}
		dst = append(dst, sh)
		p.skipWS()
		if p.consume(',') {
			p.skipWS()
			continue
		}
		if p.consume(']') {
			return dst, nil
		}
		if p.pos >= len(p.buf) {
			return dst, errShapeEOF
		}
		return dst, p.syntaxErr("expected ',' or ']' after shape")
	}
}

// parseShape decodes one {queue, procs} object and validates it.
func (p *shapeParser) parseShape(index int) (forecastShape, error) {
	var sh forecastShape
	if !p.consume('{') {
		if p.pos >= len(p.buf) {
			return sh, errShapeEOF
		}
		return sh, p.syntaxErr("expected '{'")
	}
	p.skipWS()
	if !p.consume('}') {
		for {
			key, err := p.parseStringToken()
			if err != nil {
				return sh, err
			}
			p.skipWS()
			if !p.consume(':') {
				return sh, p.syntaxErr("expected ':' after object key")
			}
			p.skipWS()
			switch keyKind(key) {
			case kindQueue:
				q, null, err := p.parseQueueValue()
				if err != nil {
					return sh, err
				}
				if !null {
					sh.queue = q
				}
			case kindProcs:
				n, null, err := p.parseIntValue()
				if err != nil {
					return sh, err
				}
				if !null {
					sh.procs = n
				}
			default:
				if err := p.skipValue(); err != nil {
					return sh, err
				}
			}
			p.skipWS()
			if p.consume(',') {
				p.skipWS()
				continue
			}
			if p.consume('}') {
				break
			}
			if p.pos >= len(p.buf) {
				return sh, errShapeEOF
			}
			return sh, p.syntaxErr("expected ',' or '}' in shape object")
		}
	}
	if sh.queue == "" {
		return sh, &shapeFieldError{index, "queue required"}
	}
	if sh.procs == 0 {
		sh.procs = 1
	}
	if sh.procs < 1 {
		return sh, &shapeFieldError{index, "procs must be a positive integer"}
	}
	return sh, nil
}

type fieldKind int

const (
	kindSkip fieldKind = iota
	kindQueue
	kindProcs
)

// keyKind classifies a raw key token: exact matches on the canonical
// lowercase tokens cost nothing; anything else — escaped or case-variant —
// is unescaped once and fold-compared, mirroring encoding/json's
// case-insensitive field fallback.
func keyKind(token []byte) fieldKind {
	switch string(token) {
	case `"queue"`:
		return kindQueue
	case `"procs"`:
		return kindProcs
	}
	var k string
	if err := json.Unmarshal(token, &k); err != nil {
		return kindSkip
	}
	switch {
	case strings.EqualFold(k, "queue"):
		return kindQueue
	case strings.EqualFold(k, "procs"):
		return kindProcs
	}
	return kindSkip
}

// parseStringToken scans one JSON string and returns its raw token, quotes
// included. Escape sequences are shape-checked here; full unescaping is
// left to the consumer (field-name match or queue intern miss).
func (p *shapeParser) parseStringToken() ([]byte, error) {
	if !p.consume('"') {
		if p.pos >= len(p.buf) {
			return nil, errShapeEOF
		}
		return nil, p.syntaxErr("expected string")
	}
	start := p.pos - 1
	for p.pos < len(p.buf) {
		switch c := p.buf[p.pos]; {
		case c == '"':
			p.pos++
			return p.buf[start:p.pos], nil
		case c == '\\':
			p.pos++
			if p.pos >= len(p.buf) {
				return nil, errShapeEOF
			}
			switch p.buf[p.pos] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				p.pos++
			case 'u':
				p.pos++
				for i := 0; i < 4; i++ {
					if p.pos >= len(p.buf) || !isHexDigit(p.buf[p.pos]) {
						return nil, p.syntaxErr("invalid \\u escape in string")
					}
					p.pos++
				}
			default:
				return nil, p.syntaxErr("invalid escape in string")
			}
		case c < 0x20:
			return nil, p.syntaxErr("raw control character in string")
		default:
			p.pos++
		}
	}
	return nil, errShapeEOF
}

func isHexDigit(c byte) bool {
	return '0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F'
}

// parseQueueValue decodes the queue field: null leaves it unset; a string
// resolves through the intern cache (hit: zero-copy, zero-alloc; miss:
// json.Unmarshal validates, unescapes, and memoizes — identical to the
// internedQueue decode path).
func (p *shapeParser) parseQueueValue() (string, bool, error) {
	if p.pos < len(p.buf) && p.buf[p.pos] == 'n' {
		if err := p.expectLiteral("null"); err != nil {
			return "", false, err
		}
		return "", true, nil
	}
	tok, err := p.parseStringToken()
	if err != nil {
		return "", false, err
	}
	q, err := internQueueToken(tok)
	if err != nil {
		return "", false, err
	}
	return q, false, nil
}

// parseIntValue decodes the procs field: null leaves it unset; otherwise a
// JSON integer, rejecting fractions, exponents, and leading zeros exactly
// as encoding/json does for an int target.
func (p *shapeParser) parseIntValue() (int, bool, error) {
	if p.pos < len(p.buf) && p.buf[p.pos] == 'n' {
		if err := p.expectLiteral("null"); err != nil {
			return 0, false, err
		}
		return 0, true, nil
	}
	neg := p.consume('-')
	start := p.pos
	var n int64
	for p.pos < len(p.buf) && p.buf[p.pos] >= '0' && p.buf[p.pos] <= '9' {
		n = n*10 + int64(p.buf[p.pos]-'0')
		if n > 1<<40 { // far beyond any processor count; avoids overflow games
			return 0, false, p.syntaxErr("number out of range for procs")
		}
		p.pos++
	}
	if p.pos == start {
		return 0, false, p.syntaxErr("expected number for procs")
	}
	if p.buf[start] == '0' && p.pos > start+1 {
		return 0, false, p.syntaxErr("invalid leading zero in number")
	}
	if p.pos < len(p.buf) {
		if c := p.buf[p.pos]; c == '.' || c == 'e' || c == 'E' {
			return 0, false, p.syntaxErr("procs must be an integer")
		}
	}
	if neg {
		n = -n
	}
	return int(n), false, nil
}

func (p *shapeParser) expectLiteral(lit string) error {
	if len(p.buf)-p.pos < len(lit) || string(p.buf[p.pos:p.pos+len(lit)]) != lit {
		return p.syntaxErr("invalid literal")
	}
	p.pos += len(lit)
	return nil
}

// skipValue scans past one JSON value of any type (the value of an unknown
// field). Strings are escape-checked; numbers and literals are scanned by
// charset.
func (p *shapeParser) skipValue() error {
	if p.pos >= len(p.buf) {
		return errShapeEOF
	}
	switch c := p.buf[p.pos]; c {
	case '"':
		_, err := p.parseStringToken()
		return err
	case '{', '[':
		return p.skipComposite()
	case 't':
		return p.expectLiteral("true")
	case 'f':
		return p.expectLiteral("false")
	case 'n':
		return p.expectLiteral("null")
	default:
		if c == '-' || (c >= '0' && c <= '9') {
			p.pos++
			for p.pos < len(p.buf) {
				c := p.buf[p.pos]
				if c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' || (c >= '0' && c <= '9') {
					p.pos++
					continue
				}
				break
			}
			return nil
		}
		return p.syntaxErr("unexpected character in value")
	}
}

// skipComposite scans past a balanced object or array, honoring strings.
func (p *shapeParser) skipComposite() error {
	depth := 0
	for p.pos < len(p.buf) {
		switch p.buf[p.pos] {
		case '{', '[':
			depth++
			p.pos++
		case '}', ']':
			depth--
			p.pos++
			if depth == 0 {
				return nil
			}
		case '"':
			if _, err := p.parseStringToken(); err != nil {
				return err
			}
		default:
			p.pos++
		}
	}
	return errShapeEOF
}

// internQueueToken resolves a raw JSON string token (quotes included) to
// its decoded value through the shared queue intern cache — the same
// lookup-by-raw-bytes protocol internedQueue.UnmarshalJSON uses, so the
// batch decoder and the observe decoder populate and hit one cache.
func internQueueToken(tok []byte) (string, error) {
	queueInterner.RLock()
	v, ok := queueInterner.m[string(tok)]
	queueInterner.RUnlock()
	if ok {
		return v, nil
	}
	var s string
	if err := json.Unmarshal(tok, &s); err != nil {
		return "", err
	}
	queueInterner.Lock()
	if len(queueInterner.m) < maxInternedQueues {
		queueInterner.m[string(tok)] = s
	}
	queueInterner.Unlock()
	return s, nil
}
