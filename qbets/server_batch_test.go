package qbets

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// Batch forecast (POST /v1/forecast): one round trip answers many shapes,
// entry-for-entry identical to the single-shape GET — except that unknown
// streams degrade to ok=false entries instead of failing the batch.

func TestServerBatchForecast(t *testing.T) {
	_, ts := newTestServer(t)

	// 100 observations in the 1-4 proc bucket gives "alpha" a real bound.
	var sb strings.Builder
	sb.WriteByte('[')
	for i := 0; i < 100; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`{"queue":"alpha","procs":2,"wait_seconds":` + string(rune('1'+i%9)) + `00}`)
	}
	sb.WriteByte(']')
	if resp := postJSON(t, ts.URL+"/v1/observe", sb.String()); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("observe status %d", resp.StatusCode)
	}

	resp := postJSON(t, ts.URL+"/v1/forecast",
		`[{"queue":"alpha","procs":2},{"queue":"alpha"},{"queue":"ghost","procs":4}]`)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || raw[len(raw)-1] != '\n' {
		t.Errorf("batch body not newline-terminated: %q", raw)
	}
	var batch []ForecastResponse
	if err := json.Unmarshal(raw, &batch); err != nil {
		t.Fatalf("batch body: %v", err)
	}
	if len(batch) != 3 {
		t.Fatalf("batch returned %d entries, want 3", len(batch))
	}

	// Entry 0 must byte-match the single-shape GET's decoded response.
	get, err := http.Get(ts.URL + "/v1/forecast?queue=alpha&procs=2")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	var single ForecastResponse
	if err := json.NewDecoder(get.Body).Decode(&single); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch[0], single) {
		t.Errorf("batch[0] = %+v differs from single GET %+v", batch[0], single)
	}
	if !batch[0].OK || batch[0].Observations != 100 {
		t.Errorf("batch[0] = %+v, want ok with 100 observations", batch[0])
	}

	// Entry 1: omitted procs defaults to 1, same bucket as procs=2.
	if batch[1].Procs != 1 || batch[1].Observations != 100 || batch[1].BoundSeconds != batch[0].BoundSeconds {
		t.Errorf("batch[1] = %+v, want defaulted procs=1 hitting the same stream", batch[1])
	}

	// Entry 2: unknown stream degrades, does not 404, echoes the shape.
	if batch[2].Queue != "ghost" || batch[2].Procs != 4 || batch[2].OK || batch[2].Observations != 0 {
		t.Errorf("batch[2] = %+v, want ghost/4 with ok=false", batch[2])
	}
	if batch[2].Quantile != 0.95 || batch[2].Confidence != 0.95 {
		t.Errorf("batch[2] levels = %+v", batch[2])
	}

	// Asking about ghost must not have created a stream.
	g, err := http.Get(ts.URL + "/v1/forecast?queue=ghost&procs=4")
	if err != nil {
		t.Fatal(err)
	}
	g.Body.Close()
	if g.StatusCode != http.StatusNotFound {
		t.Errorf("ghost GET after batch: status %d, want 404 (batch must not create streams)", g.StatusCode)
	}
}

func TestServerBatchForecastEmpty(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/forecast", `[]`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "[]\n" {
		t.Errorf("empty batch body = %q, want []\\n", raw)
	}
}

func TestServerBatchForecastOversizedBody(t *testing.T) {
	s := NewServer(true, WithSeed(1))
	body := `[{"queue":"` + strings.Repeat("a", maxForecastBody) + `","procs":1}]`
	req := httptest.NewRequest(http.MethodPost, "/v1/forecast", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
	if !strings.Contains(w.Body.String(), "body exceeds") {
		t.Errorf("body = %q, want cap message", w.Body.String())
	}
}

// TestServerBatchForecastMatchesEncodingJSON renders a mixed batch through
// the server and re-encodes the decoded result with encoding/json: the
// bytes must be identical, proving the pooled append encoder is not just
// semantically but literally the standard encoding.
func TestServerBatchForecastMatchesEncodingJSON(t *testing.T) {
	_, ts := newTestServer(t)
	postJSON(t, ts.URL+"/v1/observe", `[{"queue":"q<&>","procs":1,"wait_seconds":42.5}]`)

	resp := postJSON(t, ts.URL+"/v1/forecast", `[{"queue":"q<&>","procs":1},{"queue":"nope","procs":9}]`)
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var batch []ForecastResponse
	if err := json.Unmarshal(raw, &batch); err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(want)+"\n" {
		t.Errorf("batch bytes diverge from encoding/json:\n got %q\nwant %q", raw, string(want)+"\n")
	}
}

// TestServerForecastGetAllocsBounded pins the single-shape GET's
// allocation budget: the handler itself (decode params, snapshot read,
// pooled encode, raw write) is zero-alloc in steady state; the full
// ServeHTTP wrapper adds only a fixed handful for instrumentation (status
// writer, request-counter labels), independent of payload.
func TestServerForecastGetAllocsBounded(t *testing.T) {
	s := NewServer(true, WithSeed(1))
	req := httptest.NewRequest(http.MethodPost, "/v1/observe", strings.NewReader(`[{"queue":"q","procs":8,"wait_seconds":10}]`))
	s.ServeHTTP(httptest.NewRecorder(), req)

	w := &nopResponseWriter{h: make(http.Header)}
	greq := httptest.NewRequest(http.MethodGet, "/v1/forecast?queue=q&procs=8", nil)
	for i := 0; i < 10; i++ { // warm pools
		s.ServeHTTP(w, greq)
	}
	if n := testing.AllocsPerRun(200, func() { s.handleForecast(w, greq) }); n != 0 {
		t.Errorf("forecast GET handler allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { s.ServeHTTP(w, greq) }); n > 8 {
		t.Errorf("forecast GET allocates %v/op through ServeHTTP; instrumentation overhead grew", n)
	}
}

type nopResponseWriter struct{ h http.Header }

func (w *nopResponseWriter) Header() http.Header         { return w.h }
func (w *nopResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nopResponseWriter) WriteHeader(int)             {}
