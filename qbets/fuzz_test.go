package qbets

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// decodeObservePayload mirrors the handler's parse: first JSON value only
// (trailing bytes ignored), array or single record.
func decodeObservePayload(data []byte) (records []ObserveRecord, ok bool) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var raw json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		return nil, false
	}
	if len(raw) > 0 && raw[0] == '[' {
		if err := json.Unmarshal(raw, &records); err != nil {
			return nil, false
		}
		return records, true
	}
	var one ObserveRecord
	if err := json.Unmarshal(raw, &one); err != nil {
		return nil, false
	}
	return []ObserveRecord{one}, true
}

// FuzzObserveRecord hardens the observe ingestion path: arbitrary bytes
// must never panic the handler, anything the JSON layer accepts must
// round-trip losslessly, and the handler must answer every payload with
// either 204 (ingested) or 400 (rejected, with a JSON error body).
func FuzzObserveRecord(f *testing.F) {
	// Well-formed singles and batches.
	f.Add([]byte(`{"queue":"normal","procs":8,"wait_seconds":123}`))
	f.Add([]byte(`[{"queue":"normal","procs":8,"wait_seconds":123},{"queue":"high","procs":1,"wait_seconds":0}]`))
	f.Add([]byte(`{"queue":"q","procs":0,"wait_seconds":0.5}`))
	f.Add([]byte(`{"queue":"üñïçø∂é","procs":2147483647,"wait_seconds":1e300}`))
	// Hostile shapes.
	f.Add([]byte(`{bad json`))
	f.Add([]byte(`[`))
	f.Add([]byte(`"just a string"`))
	f.Add([]byte(`{"queue":"","wait_seconds":1}`))
	f.Add([]byte(`{"queue":"q","wait_seconds":-1}`))
	f.Add([]byte(`{"queue":"q","procs":-5,"wait_seconds":1}`))
	f.Add([]byte(`[{"queue":"a","wait_seconds":1},{"queue":"","wait_seconds":2}]`))
	f.Add([]byte(`{"queue":"q","wait_seconds":1e999}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte("[{\"queue\":\"q\",\"wait_seconds\":1}]\n{\"queue\":\"r\"}"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// JSON-layer property: an accepted record re-encodes and decodes
		// to itself (valid JSON cannot smuggle NaN/Inf into the floats).
		var rec ObserveRecord
		if err := json.Unmarshal(data, &rec); err == nil {
			out, err := json.Marshal(rec)
			if err != nil {
				t.Fatalf("accepted record %+v does not re-marshal: %v", rec, err)
			}
			var back ObserveRecord
			if err := json.Unmarshal(out, &back); err != nil {
				t.Fatalf("re-marshaled record rejected: %v", err)
			}
			if !reflect.DeepEqual(rec, back) {
				t.Fatalf("round trip changed record: %+v vs %+v", rec, back)
			}
		}

		// Differential oracle for the handler contract: the payload is the
		// first JSON value in the body — an array of records or a single
		// record — and it is ingested iff it fits the body cap and every
		// record has a queue and a finite non-negative wait (JSON cannot
		// encode NaN or Inf, so the finiteness check is unreachable here but
		// the cap is not). Anything else earns a 400 with a JSON error.
		records, parses := decodeObservePayload(data)
		valid := parses && len(data) <= maxObserveBody
		for _, rec := range records {
			if rec.Queue == "" || rec.WaitSeconds < 0 {
				valid = false
				break
			}
		}

		srv := NewServer(true, WithSeed(1))
		req := httptest.NewRequest(http.MethodPost, "/v1/observe", strings.NewReader(string(data)))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		switch {
		case valid:
			if w.Code != http.StatusNoContent {
				t.Fatalf("valid payload %q got status %d: %s", data, w.Code, w.Body.String())
			}
			if len(records) > 0 && srv.Service().NumStreams() == 0 {
				t.Fatalf("204 with no streams for %q", data)
			}
		default:
			if w.Code != http.StatusBadRequest {
				t.Fatalf("invalid payload %q got status %d", data, w.Code)
			}
			var er ErrorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Fatalf("400 without JSON error body for %q: %s", data, w.Body.String())
			}
		}
	})
}
