package qbets

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/repl"
	"repro/internal/wal"
)

func newReplicaWAL(t *testing.T, opt wal.Options) *wal.WAL {
	t.Helper()
	if opt.FS == nil {
		opt.FS = wal.NewMemFS()
	}
	w, err := wal.Open("wal", opt)
	if err != nil {
		t.Fatal(err)
	}
	// No Replay here: these WALs are handed to RecoverWAL / Promote,
	// which replay as part of attachment.
	t.Cleanup(func() { w.Close() })
	return w
}

func waitForReplica(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestFollowerRefusesWrites(t *testing.T) {
	s := NewService(false, WithSeed(1))
	s.SetFollower(true)
	if err := s.Observe("normal", 4, 10); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("Observe on follower: got %v, want ErrNotLeader", err)
	}
	n, err := s.ObserveBatch([]ObserveRecord{{Queue: "normal", WaitSeconds: 10}})
	if n != 0 || !errors.Is(err, ErrNotLeader) {
		t.Fatalf("ObserveBatch on follower: got (%d, %v), want (0, ErrNotLeader)", n, err)
	}
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 0 {
		t.Fatalf("ObserveBatch error should be a BatchError at index 0, got %#v", err)
	}
	// Invalid waits are still rejected as invalid, not masked by the gate.
	if err := s.Observe("normal", 4, -1); !errors.Is(err, ErrInvalidWait) {
		t.Fatalf("invalid wait on follower: got %v, want ErrInvalidWait", err)
	}
	s.SetFollower(false)
	if err := s.Observe("normal", 4, 10); err != nil {
		t.Fatalf("Observe after clearing follower mode: %v", err)
	}
}

// TestApplyReplicatedMatchesDirectObserve proves the follower apply path
// is state-equivalent to the leader's: the same waits, delivered as
// replicated records, produce the same bounds and depths.
func TestApplyReplicatedMatchesDirectObserve(t *testing.T) {
	oracle := NewService(false, WithSeed(1))
	fol := NewService(false, WithSeed(1))
	fol.SetFollower(true)

	rng := rand.New(rand.NewSource(7))
	queues := []string{"normal", "high", "low"}
	var recs []wal.Record
	for i := 0; i < 300; i++ {
		q := queues[i%len(queues)]
		wsec := float64(1 + rng.Intn(1000))
		if err := oracle.Observe(q, 0, wsec); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, wal.Record{Seq: uint64(i + 1), Key: q, Wait: wsec, UnixNanos: 1})
	}
	// Deliver in two batches, the second overlapping the first: the
	// per-stream dedup must drop the overlap.
	if err := fol.ApplyReplicated(0, recs[:200]); err != nil {
		t.Fatal(err)
	}
	if err := fol.ApplyReplicated(100, recs[100:]); err != nil {
		t.Fatal(err)
	}
	if got := fol.ReplicaAppliedSeq(); got != 300 {
		t.Fatalf("ReplicaAppliedSeq = %d, want 300", got)
	}
	for _, q := range queues {
		want, wantOK := oracle.Forecast(q, 0)
		got, gotOK := fol.Forecast(q, 0)
		if want != got || wantOK != gotOK {
			t.Fatalf("queue %q: follower forecast (%v,%v) != oracle (%v,%v)", q, got, gotOK, want, wantOK)
		}
		ws, _ := oracle.StreamStats(q, 0)
		fs, _ := fol.StreamStats(q, 0)
		if ws.Observations != fs.Observations {
			t.Fatalf("queue %q: follower has %d observations, oracle %d", q, fs.Observations, ws.Observations)
		}
	}

	// A batch from the future must be refused with a gap.
	future := []wal.Record{{Seq: 501, Key: "normal", Wait: 1, UnixNanos: 1}}
	if err := fol.ApplyReplicated(500, future); !errors.Is(err, ErrReplicaGap) {
		t.Fatalf("future batch: got %v, want ErrReplicaGap", err)
	}
	// Re-delivering an old batch is a no-op, not an error.
	if err := fol.ApplyReplicated(0, recs[:50]); err != nil {
		t.Fatal(err)
	}
	fs, _ := fol.StreamStats("normal", 0)
	ws, _ := oracle.StreamStats("normal", 0)
	if fs.Observations != ws.Observations {
		t.Fatalf("re-delivery changed state: %d vs %d observations", fs.Observations, ws.Observations)
	}
}

func TestReplicaSnapshotRoundTrip(t *testing.T) {
	leader := NewService(false, WithSeed(1))
	w := newReplicaWAL(t, wal.Options{Mode: wal.SyncEachRecord})
	if _, err := leader.RecoverWAL(w); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		if err := leader.Observe(fmt.Sprintf("q%d", i%4), 0, float64(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	covered, blob, err := leader.ReplicaSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if covered != 120 {
		t.Fatalf("covered = %d, want 120", covered)
	}

	fol := NewService(false, WithSeed(1))
	fol.SetFollower(true)
	if err := fol.InstallReplicaSnapshot(covered, blob); err != nil {
		t.Fatal(err)
	}
	if got := fol.ReplicaAppliedSeq(); got != covered {
		t.Fatalf("ReplicaAppliedSeq = %d, want %d", got, covered)
	}
	if fol.NumStreams() != leader.NumStreams() {
		t.Fatalf("follower has %d streams, leader %d", fol.NumStreams(), leader.NumStreams())
	}
	for i := 0; i < 4; i++ {
		q := fmt.Sprintf("q%d", i)
		want, wantOK := leader.Forecast(q, 0)
		got, gotOK := fol.Forecast(q, 0)
		if want != got || wantOK != gotOK {
			t.Fatalf("queue %q: follower forecast (%v,%v) != leader (%v,%v)", q, got, gotOK, want, wantOK)
		}
	}
	// Records at or below the covered sequence dedup away; records above
	// it extend the state.
	pre, _ := fol.StreamStats("q0", 0)
	if err := fol.ApplyReplicated(116, []wal.Record{{Seq: 117, Key: "q0", Wait: 1, UnixNanos: 1}}); err != nil {
		t.Fatal(err)
	}
	mid, _ := fol.StreamStats("q0", 0)
	if mid.Observations != pre.Observations {
		t.Fatalf("covered record re-applied: %d -> %d observations", pre.Observations, mid.Observations)
	}
	if err := fol.ApplyReplicated(120, []wal.Record{{Seq: 121, Key: "q0", Wait: 1, UnixNanos: 1}}); err != nil {
		t.Fatal(err)
	}
	post, _ := fol.StreamStats("q0", 0)
	if post.Observations != pre.Observations+1 {
		t.Fatalf("new record not applied: %d -> %d observations", pre.Observations, post.Observations)
	}
	if fol.ReplicaAppliedSeq() != 121 {
		t.Fatalf("ReplicaAppliedSeq = %d, want 121", fol.ReplicaAppliedSeq())
	}

	// A corrupt snapshot must be refused, not half-installed.
	if err := fol.InstallReplicaSnapshot(1, []byte("not json")); !errors.Is(err, ErrCorruptState) {
		t.Fatalf("corrupt snapshot: got %v, want ErrCorruptState", err)
	}
}

// TestPromoteAdvancesSequenceSpace proves a promoted follower's new
// appends land above the replicated prefix, so recovery cannot dedup
// them against the old leader's records.
func TestPromoteAdvancesSequenceSpace(t *testing.T) {
	s := NewService(false, WithSeed(1))
	s.SetFollower(true)
	recs := make([]wal.Record, 40)
	for i := range recs {
		recs[i] = wal.Record{Seq: uint64(i + 1), Key: "normal", Wait: float64(i + 1), UnixNanos: 1}
	}
	if err := s.ApplyReplicated(0, recs); err != nil {
		t.Fatal(err)
	}

	w := newReplicaWAL(t, wal.Options{Mode: wal.SyncEachRecord})
	if _, err := s.Promote(w); err != nil {
		t.Fatal(err)
	}
	if s.IsFollower() {
		t.Fatal("still a follower after Promote")
	}
	if err := s.Observe("normal", 0, 5); err != nil {
		t.Fatalf("Observe after Promote: %v", err)
	}
	// The first post-promotion append must be sequence 41, and it must
	// actually have been folded in (not deduped away by the anchor).
	if got := w.SyncedSeq(); got != 41 {
		t.Fatalf("post-promotion synced seq = %d, want 41", got)
	}
	st, _ := s.StreamStats("normal", 0)
	if st.Observations != 41 {
		t.Fatalf("observations after promote+observe = %d, want 41", st.Observations)
	}

	// Promote on a non-follower is a bug, not a no-op.
	if _, err := s.Promote(w); err == nil {
		t.Fatal("second Promote should fail")
	}
}

func TestCommitHookGatesObserve(t *testing.T) {
	s := NewService(false, WithSeed(1))
	w := newReplicaWAL(t, wal.Options{Mode: wal.SyncEachRecord})
	if _, err := s.RecoverWAL(w); err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	var fail error
	s.SetCommitHook(func(lastSeq uint64) error {
		seqs = append(seqs, lastSeq)
		return fail
	})
	if err := s.Observe("normal", 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ObserveBatch([]ObserveRecord{
		{Queue: "normal", WaitSeconds: 2},
		{Queue: "high", WaitSeconds: 3},
	}); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 3 {
		t.Fatalf("hook saw seqs %v, want [1 3]", seqs)
	}

	// A failing hook refuses the observe as ErrReadOnly. The record is
	// durable and applied locally — apply-then-wait, the primary-backup
	// ordering — so the refusal means "not replicated", never "lost".
	fail = errors.New("no follower ack")
	pre, _ := s.StreamStats("normal", 0)
	err := s.Observe("normal", 0, 4)
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("failing hook: got %v, want ErrReadOnly", err)
	}
	post, _ := s.StreamStats("normal", 0)
	if post.Observations != pre.Observations+1 {
		t.Fatalf("refused observe should still be applied locally: %d -> %d", pre.Observations, post.Observations)
	}
	n, berr := s.ObserveBatch([]ObserveRecord{{Queue: "normal", WaitSeconds: 5}})
	if n != 1 || !errors.Is(berr, ErrReadOnly) {
		t.Fatalf("failing hook on batch: got (%d, %v), want (1, ErrReadOnly)", n, berr)
	}
	var be *BatchError
	if !errors.As(berr, &be) || be.Index != 1 {
		t.Fatalf("batch refusal should carry Index == applied count, got %#v", berr)
	}
}

// TestReplicatedServingEndToEnd wires two real Services through the repl
// plane over the in-memory transport: writes on the leader become
// identical forecasts on the follower, and synchronous commit waits
// observe the follower's acks.
func TestReplicatedServingEndToEnd(t *testing.T) {
	leaderSvc := NewService(false, WithSeed(1))
	w := newReplicaWAL(t, wal.Options{Mode: wal.SyncEachRecord})
	if _, err := leaderSvc.RecoverWAL(w); err != nil {
		t.Fatal(err)
	}
	tr := repl.NewMemTransport()
	ln, err := tr.Listen("leader")
	if err != nil {
		t.Fatal(err)
	}
	ldr := repl.NewLeader(w, leaderSvc, repl.LeaderOptions{Epoch: 1, HeartbeatEvery: 20 * time.Millisecond})
	defer ldr.Close()
	go ldr.Serve(ln)
	leaderSvc.SetCommitHook(ldr.CommitWait)

	folSvc := NewService(false, WithSeed(1))
	folSvc.SetFollower(true)
	fol, err := repl.NewFollower(folSvc, repl.FollowerOptions{
		Addr:       "leader",
		Transport:  tr,
		Epochs:     &repl.MemEpochStore{},
		BackoffMin: time.Millisecond,
		BackoffMax: 20 * time.Millisecond,
		Rand:       rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()
	go fol.Run()

	for i := 0; i < 150; i++ {
		if err := leaderSvc.Observe("normal", 0, float64(1+i%60)); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
	waitForReplica(t, "follower to apply the leader's records", func() bool {
		return folSvc.ReplicaAppliedSeq() >= 150
	})
	want, wantOK := leaderSvc.Forecast("normal", 0)
	got, gotOK := folSvc.Forecast("normal", 0)
	if want != got || wantOK != gotOK {
		t.Fatalf("follower forecast (%v,%v) != leader (%v,%v)", got, gotOK, want, wantOK)
	}
	// The commit hook means every returned Observe was follower-acked.
	if ack := ldr.AckSeq(); ack < 150 {
		t.Fatalf("ack watermark %d, want >= 150", ack)
	}
}
