package qbets

import (
	"math"
	"time"

	"repro/internal/obs"
	"repro/internal/repl"
)

// replState is the server's view of its replication role, installed by
// SetLeaderReplication or SetFollowerReplication. Its two probes drive
// the health endpoint and the Retry-After header: degraded flips /healthz
// to 503 (a fenced ex-leader, a follower lagging past its bound), and
// retryAfter turns the node's actual recovery cadence into the hint a
// refused client is given.
type replState struct {
	role       string
	degraded   func() bool
	retryAfter func() time.Duration
}

// retryAfterSeconds derives the Retry-After for a 503: the largest of one
// second, the WAL's sync probe interval (how long a read-only refusal
// takes to self-heal), and the replication layer's own estimate (a
// disconnected follower's current reconnect backoff). Rounded up to whole
// seconds, as the delay-seconds form of the header requires.
func (s *Server) retryAfterSeconds() int {
	d := time.Second
	if p := s.svc.SyncProbeInterval(); p > d {
		d = p
	}
	if rs := s.repl.Load(); rs != nil && rs.retryAfter != nil {
		if rd := rs.retryAfter(); rd > d {
			d = rd
		}
	}
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// SetLeaderReplication marks this server as the replication leader and
// exposes the leader's shipping plane on /metrics. A fenced leader — one
// that has seen a higher epoch — reports unhealthy so a balancer stops
// routing writes to it.
func (s *Server) SetLeaderReplication(l *repl.Leader) {
	s.repl.Store(&replState{
		role:     "leader",
		degraded: l.Fenced,
	})
	b := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	s.reg.RegisterGaugeFunc("qbets_repl_role", "Replication role; the value is always 1, the label carries the role.",
		func(emit func(string, float64)) { emit(obs.Labels("role", "leader"), 1) })
	s.reg.RegisterGaugeFunc("qbets_repl_epoch", "Replication epoch this node is serving under.",
		func(emit func(string, float64)) { emit("", float64(l.Epoch())) })
	s.reg.RegisterGaugeFunc("qbets_repl_fenced", "1 once this leader has witnessed a higher epoch and refuses to ack.",
		func(emit func(string, float64)) { emit("", b(l.Fenced())) })
	s.reg.RegisterGaugeFunc("qbets_repl_followers", "Follower sessions currently connected.",
		func(emit func(string, float64)) { emit("", float64(l.Followers())) })
	s.reg.RegisterGaugeFunc("qbets_repl_ack_seq", "Highest sequence acknowledged as applied by a follower.",
		func(emit func(string, float64)) { emit("", float64(l.AckSeq())) })
	s.reg.RegisterCounterFunc("qbets_repl_batches_sent_total", "Record batches shipped to followers.",
		func(emit func(string, float64)) { emit("", float64(l.BatchesSent())) })
	s.reg.RegisterCounterFunc("qbets_repl_records_shipped_total", "Log records shipped to followers.",
		func(emit func(string, float64)) { emit("", float64(l.RecordsShipped())) })
	s.reg.RegisterCounterFunc("qbets_repl_snapshots_sent_total", "Catch-up snapshots sent to new or lagging followers.",
		func(emit func(string, float64)) { emit("", float64(l.SnapshotsSent())) })
	s.reg.RegisterCounterFunc("qbets_repl_heartbeats_sent_total", "Heartbeats sent on idle follower sessions.",
		func(emit func(string, float64)) { emit("", float64(l.HeartbeatsSent())) })
	s.reg.RegisterCounterFunc("qbets_repl_fences_total", "Times this leader was fenced by a higher epoch.",
		func(emit func(string, float64)) { emit("", float64(l.Fences())) })
	s.reg.RegisterGaugeFunc("qbets_repl_quorum", "Commit quorum K: acks required before CommitWait releases.",
		func(emit func(string, float64)) { emit("", float64(l.Quorum())) })
	s.reg.RegisterCounterFunc("qbets_repl_ship_bytes_total", "Payload bytes shipped to followers (batches, snapshots, chunks).",
		func(emit func(string, float64)) { emit("", float64(l.ShipBytes())) })
	s.reg.RegisterCounterFunc("qbets_repl_batch_cache_hits_total", "Shipped batches served from the frame-once batch cache.",
		func(emit func(string, float64)) { emit("", float64(l.BatchCacheHits())) })
	s.reg.RegisterCounterFunc("qbets_repl_batch_cache_misses_total", "Shipped batches that had to be read and framed from the WAL.",
		func(emit func(string, float64)) { emit("", float64(l.BatchCacheMisses())) })
	s.reg.RegisterGaugeFunc("qbets_repl_inflight_messages", "Sent-but-unacknowledged messages across all follower windows.",
		func(emit func(string, float64)) { emit("", float64(l.InflightMessages())) })
	s.reg.RegisterGaugeFunc("qbets_repl_inflight_bytes", "Sent-but-unacknowledged payload bytes across all follower windows.",
		func(emit func(string, float64)) { emit("", float64(l.InflightBytes())) })
	s.reg.RegisterCounterFunc("qbets_repl_snapshot_chunks_sent_total", "Catch-up snapshot chunks shipped.",
		func(emit func(string, float64)) { emit("", float64(l.SnapChunksSent())) })
	s.reg.RegisterCounterFunc("qbets_repl_snapshot_generations_shared_total", "Catch-ups that joined an already-open snapshot generation.",
		func(emit func(string, float64)) { emit("", float64(l.SnapGenerationsShared())) })
	s.reg.RegisterGaugeFunc("qbets_repl_snapshot_inflight_peak_bytes", "High-water mark of snapshot chunk bytes in flight across all catch-ups.",
		func(emit func(string, float64)) { emit("", float64(l.SnapInflightPeakBytes())) })
}

// SetFollowerReplication marks this server as a replication follower and
// exposes its session on /metrics. Writes are already refused by the
// Service's follower gate; this additionally makes /healthz report 503
// while the follower lags past its configured bound, so a balancer stops
// routing reads to state staler than the operator allows.
func (s *Server) SetFollowerReplication(f *repl.Follower) {
	s.repl.Store(&replState{
		role:       "follower",
		degraded:   f.Degraded,
		retryAfter: f.RetryAfter,
	})
	b := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	s.reg.RegisterGaugeFunc("qbets_repl_role", "Replication role; the value is always 1, the label carries the role.",
		func(emit func(string, float64)) { emit(obs.Labels("role", "follower"), 1) })
	s.reg.RegisterGaugeFunc("qbets_repl_epoch", "Highest replication epoch this node has witnessed.",
		func(emit func(string, float64)) { emit("", float64(f.Epoch())) })
	s.reg.RegisterGaugeFunc("qbets_repl_connected", "1 while a session with the leader is live.",
		func(emit func(string, float64)) { emit("", b(f.Connected())) })
	s.reg.RegisterGaugeFunc("qbets_repl_lag", "Records the applied state trails the leader's advertised durability watermark by.",
		func(emit func(string, float64)) { emit("", float64(f.Lag())) })
	s.reg.RegisterGaugeFunc("qbets_repl_leader_seq", "Leader's last advertised durability watermark.",
		func(emit func(string, float64)) { emit("", float64(f.LeaderSeq())) })
	s.reg.RegisterGaugeFunc("qbets_repl_applied_seq", "Highest replicated sequence folded into local state.",
		func(emit func(string, float64)) { emit("", float64(s.svc.ReplicaAppliedSeq())) })
	s.reg.RegisterCounterFunc("qbets_repl_reconnects_total", "Replication sessions established (first connect included).",
		func(emit func(string, float64)) { emit("", float64(f.Reconnects())) })
	s.reg.RegisterCounterFunc("qbets_repl_batches_applied_total", "Shipped batches applied.",
		func(emit func(string, float64)) { emit("", float64(f.BatchesApplied())) })
	s.reg.RegisterCounterFunc("qbets_repl_records_applied_total", "Shipped records applied.",
		func(emit func(string, float64)) { emit("", float64(f.RecordsApplied())) })
	s.reg.RegisterCounterFunc("qbets_repl_snapshots_installed_total", "Catch-up snapshots installed.",
		func(emit func(string, float64)) { emit("", float64(f.SnapshotsInstalled())) })
	s.reg.RegisterCounterFunc("qbets_repl_rejects_sent_total", "Stale-epoch messages rejected (fences sent to a deposed leader).",
		func(emit func(string, float64)) { emit("", float64(f.RejectsSent())) })
	s.reg.RegisterCounterFunc("qbets_repl_snapshot_chunks_applied_total", "Catch-up snapshot chunks applied.",
		func(emit func(string, float64)) { emit("", float64(f.SnapshotChunksApplied())) })
	s.reg.RegisterCounterFunc("qbets_repl_snapshot_aborts_total", "Torn chunked snapshot transfers discarded before commit.",
		func(emit func(string, float64)) { emit("", float64(f.SnapshotAborts())) })
}
