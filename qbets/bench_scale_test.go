package qbets

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"
)

// Scale benchmarks for the million-stream story. These are sized runs, not
// throughput loops — run them with -benchtime=1x (the Makefile's bench
// target does): one iteration builds the registry, evicts to a bounded
// hydrated set, and measures what the read plane looks like at scale.

func scaleQueueName(j int) string { return fmt.Sprintf("u%07d", j) }

// BenchmarkMillionStreams creates a million streams, caps the hydrated set
// at 10k, and serves reads across the whole keyspace. Reported metrics:
// heap bytes per stream after eviction (the cold-state footprint) and the
// p50/p99 lock-free read latency over cold streams. Loose guards fail the
// run outright if the cap leaks or cold reads stop answering.
func BenchmarkMillionStreams(b *testing.B) {
	const streams = 1 << 20 // 1,048,576
	const hydratedCap = 10_000
	for iter := 0; iter < b.N; iter++ {
		svc := NewService(false, WithSeed(11))
		start := time.Now()
		for j := 0; j < streams; j++ {
			if err := svc.Observe(scaleQueueName(j), 1, float64(10+j%500)); err != nil {
				b.Fatal(err)
			}
		}
		buildSecs := time.Since(start).Seconds()
		b.ReportMetric(buildSecs*1e9/streams, "create-ns/stream")

		svc.EvictToCap(hydratedCap)
		if live := svc.LiveStreams(); live > hydratedCap {
			b.Fatalf("LiveStreams = %d after EvictToCap(%d)", live, hydratedCap)
		}
		if n := svc.NumStreams(); n != streams {
			b.Fatalf("NumStreams = %d, want %d", n, streams)
		}
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		b.ReportMetric(float64(ms.HeapAlloc)/streams, "heapB/stream")

		// Read tail over a uniform sample of the (overwhelmingly cold)
		// keyspace: the lock-free snapshot path must be flat — no
		// rehydration, no per-read allocation spikes.
		const reads = 100_000
		rng := rand.New(rand.NewSource(11))
		lat := make([]float64, reads)
		for i := 0; i < reads; i++ {
			q := scaleQueueName(rng.Intn(streams))
			t0 := time.Now()
			svc.Forecast(q, 1) // ok is legitimately false below minObservations
			lat[i] = float64(time.Since(t0).Nanoseconds())
			if svc.Observations(q, 1) != 1 {
				b.Fatalf("cold stream %s stopped answering", q)
			}
		}
		if live := svc.LiveStreams(); live > hydratedCap {
			b.Fatal("read traffic rehydrated streams")
		}
		sort.Float64s(lat)
		b.ReportMetric(lat[reads/2], "read-p50-ns")
		b.ReportMetric(lat[reads*99/100], "read-p99-ns")
	}
}

// BenchmarkStreamCreationChurn sizes stream creation: ns per create at
// growing registry sizes. Before the partitioned COW index a create
// rebuilt the whole index (O(n) — 4.9ms/op at 20k streams); now it clones
// one partition, so the per-create cost should stay near-flat across these
// sizes.
func BenchmarkStreamCreationChurn(b *testing.B) {
	for _, n := range []int{20_000, 80_000, 320_000} {
		b.Run(fmt.Sprintf("streams%d", n), func(b *testing.B) {
			for iter := 0; iter < b.N; iter++ {
				svc := NewService(false, WithSeed(7))
				start := time.Now()
				for j := 0; j < n; j++ {
					if err := svc.Observe(fmt.Sprintf("churn-%07d", j), 1, 1); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(time.Since(start).Seconds()*1e9/float64(n), "create-ns/stream")
			}
		})
	}
}
