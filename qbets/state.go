package qbets

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// State persistence: a deployed forecaster accumulates months of history;
// these helpers let it survive process restarts without retraining.

// MarshalBinary encodes the forecaster's full state (configuration,
// calibration, and history).
func (f *Forecaster) MarshalBinary() ([]byte, error) {
	return f.b.MarshalBinary()
}

// UnmarshalBinary restores state produced by MarshalBinary, replacing the
// forecaster's configuration and history entirely.
func (f *Forecaster) UnmarshalBinary(data []byte) error {
	return f.b.UnmarshalBinary(data)
}

// Save writes the forecaster's state to w.
func (f *Forecaster) Save(w io.Writer) error {
	blob, err := f.MarshalBinary()
	if err != nil {
		return err
	}
	_, err = w.Write(blob)
	return err
}

// SaveFile writes the forecaster's state to a file.
func (f *Forecaster) SaveFile(path string) error {
	blob, err := f.MarshalBinary()
	if err != nil {
		return err
	}
	return writeFileAtomic(path, blob)
}

// writeFileAtomic writes via a temp file + rename so a crash mid-save
// never leaves a truncated state file behind.
func writeFileAtomic(path string, blob []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Load restores a forecaster from a state blob written by Save.
func Load(r io.Reader) (*Forecaster, error) {
	blob, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	f := New()
	if err := f.UnmarshalBinary(blob); err != nil {
		return nil, err
	}
	return f, nil
}

// LoadFile restores a forecaster from a state file written by SaveFile.
func LoadFile(path string) (*Forecaster, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f := New()
	if err := f.UnmarshalBinary(blob); err != nil {
		return nil, err
	}
	return f, nil
}

// Service persistence: the whole per-stream forecaster family serializes
// as one blob, so a deployment (e.g. qbets-serve) restarts with its
// accumulated history intact.

// serviceBlob is the JSON-framed container; each stream's forecaster state
// rides inside as the binary blob the core format defines.
type serviceBlob struct {
	ByProcs  bool              `json:"by_procs"`
	NextSeed int64             `json:"next_seed"`
	Streams  map[string][]byte `json:"streams"`
}

// MarshalBinary encodes every stream's forecaster state. It is safe to
// call while serving: each stream is read-locked only while its own
// forecaster serializes.
func (s *Service) MarshalBinary() ([]byte, error) {
	streams := s.snapshotStreams()
	blob := serviceBlob{
		ByProcs:  s.byProcs.Load(),
		NextSeed: s.nextSeed.Load(),
		Streams:  make(map[string][]byte, len(streams)),
	}
	for k, st := range streams {
		st.mu.RLock()
		b, err := st.fc.MarshalBinary()
		st.mu.RUnlock()
		if err != nil {
			return nil, fmt.Errorf("qbets: stream %q: %w", k, err)
		}
		blob.Streams[k] = b
	}
	return json.Marshal(blob)
}

// UnmarshalBinary restores a Service serialized by MarshalBinary,
// replacing the current stream set wholesale. The receiver's options are
// retained for streams created after the restore; restored streams carry
// their own serialized configuration. Self-monitoring hit-rate windows
// restart empty — the correctness metric describes the running deployment,
// not the archived history.
func (s *Service) UnmarshalBinary(data []byte) error {
	var blob serviceBlob
	if err := json.Unmarshal(data, &blob); err != nil {
		return fmt.Errorf("qbets: service state: %w", err)
	}
	restored := make(map[string]*stream, len(blob.Streams))
	for k, fb := range blob.Streams {
		fc := New()
		if err := fc.UnmarshalBinary(fb); err != nil {
			return fmt.Errorf("qbets: stream %q: %w", k, err)
		}
		restored[k] = adoptStream(k, fc)
	}
	s.byProcs.Store(blob.ByProcs)
	s.nextSeed.Store(blob.NextSeed)
	s.replaceStreams(restored)
	return nil
}

// SaveFile writes the service's state to a file.
func (s *Service) SaveFile(path string) error {
	blob, err := s.MarshalBinary()
	if err != nil {
		return err
	}
	return writeFileAtomic(path, blob)
}

// LoadServiceFile restores a Service from a state file. splitByProcs and
// opts apply to streams created after the restore.
func LoadServiceFile(path string, splitByProcs bool, opts ...Option) (*Service, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := NewService(splitByProcs, opts...)
	if err := s.UnmarshalBinary(blob); err != nil {
		return nil, err
	}
	return s, nil
}

// Interval is a two-sided confidence interval on a quantile of queue
// delay: with the stated confidence, the quantile lies in [Low, High].
type Interval struct {
	Quantile   float64
	Confidence float64
	Low, High  float64
	OK         bool
}

// ForecastInterval returns a two-sided confidence interval for the q
// quantile, built from two one-sided bounds at confidence
// (1 + confidence)/2 each (Bonferroni: the pair holds jointly with at
// least the requested confidence). The paper notes the method extends to
// two-sided intervals this way (Section 3).
func (f *Forecaster) ForecastInterval(q, confidence float64) Interval {
	side := (1 + confidence) / 2
	lo := f.ForecastQuantile(q, side, true)
	hi := f.ForecastQuantile(q, side, false)
	return Interval{
		Quantile:   q,
		Confidence: confidence,
		Low:        lo.Seconds,
		High:       hi.Seconds,
		OK:         lo.OK && hi.OK,
	}
}
