package qbets

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// ErrCorruptState marks state blobs that fail to decode. Callers use it to
// tell a damaged snapshot (quarantine it and start fresh) apart from I/O
// failures such as permission errors, where the file may be perfectly
// intact and moving it aside would discard good state.
var ErrCorruptState = errors.New("state file is corrupt")

// State persistence: a deployed forecaster accumulates months of history;
// these helpers let it survive process restarts without retraining.

// MarshalBinary encodes the forecaster's full state (configuration,
// calibration, and history).
func (f *Forecaster) MarshalBinary() ([]byte, error) {
	return f.b.MarshalBinary()
}

// UnmarshalBinary restores state produced by MarshalBinary, replacing the
// forecaster's configuration and history entirely.
func (f *Forecaster) UnmarshalBinary(data []byte) error {
	return f.b.UnmarshalBinary(data)
}

// Save writes the forecaster's state to w.
func (f *Forecaster) Save(w io.Writer) error {
	blob, err := f.MarshalBinary()
	if err != nil {
		return err
	}
	_, err = w.Write(blob)
	return err
}

// SaveFile writes the forecaster's state to a file.
func (f *Forecaster) SaveFile(path string) error {
	blob, err := f.MarshalBinary()
	if err != nil {
		return err
	}
	return writeFileAtomic(path, blob)
}

// writeFileAtomic writes via a temp file + fsync + rename + directory
// fsync. The rename keeps a crash mid-save from leaving a truncated state
// file; the two fsyncs make the new contents and the directory entry
// durable before the caller acts on the save — without them a power cut
// after rename can surface the old file, an empty one, or nothing, even
// though the save reported success (and, worse, triggered WAL compaction).
func writeFileAtomic(path string, blob []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(blob)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory, making renames and unlinks within it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Load restores a forecaster from a state blob written by Save.
func Load(r io.Reader) (*Forecaster, error) {
	blob, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	f := New()
	if err := f.UnmarshalBinary(blob); err != nil {
		return nil, err
	}
	return f, nil
}

// LoadFile restores a forecaster from a state file written by SaveFile.
func LoadFile(path string) (*Forecaster, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f := New()
	if err := f.UnmarshalBinary(blob); err != nil {
		return nil, err
	}
	return f, nil
}

// Service persistence: the whole per-stream forecaster family serializes
// as one blob, so a deployment (e.g. qbets-serve) restarts with its
// accumulated history intact.

// serviceBlob is the JSON-framed container; each stream's forecaster state
// rides inside as the binary blob the core format defines. StreamSeqs
// records, per stream, the WAL sequence number of the newest observation
// the snapshot includes — the anchor that lets startup recovery merge the
// log tail exactly (older snapshots without the field replay from zero,
// which only matters if a WAL predating the snapshot format is kept).
type serviceBlob struct {
	ByProcs    bool              `json:"by_procs"`
	NextSeed   int64             `json:"next_seed"`
	Streams    map[string][]byte `json:"streams"`
	StreamSeqs map[string]uint64 `json:"stream_seqs,omitempty"`
}

// MarshalBinary encodes every stream's forecaster state. It is safe to
// call while serving: each stream is read-locked only while its own
// forecaster serializes, and the per-stream WAL sequence number is read
// under that same lock, so each stream's (state, seq) pair is consistent
// even mid-traffic.
func (s *Service) MarshalBinary() ([]byte, error) {
	streams := s.snapshotStreams()
	blob := serviceBlob{
		ByProcs:    s.byProcs.Load(),
		NextSeed:   s.nextSeed.Load(),
		Streams:    make(map[string][]byte, len(streams)),
		StreamSeqs: make(map[string]uint64, len(streams)),
	}
	for k, st := range streams {
		st.mu.RLock()
		var b []byte
		var err error
		if st.fc != nil {
			b, err = st.fc.MarshalBinary()
		} else {
			// Evicted stream: the cold blob IS the serialized forecaster,
			// written at eviction time and immutable since.
			b = st.cold
		}
		seq := st.lastSeq
		st.mu.RUnlock()
		if err != nil {
			return nil, fmt.Errorf("qbets: stream %q: %w", k, err)
		}
		blob.Streams[k] = b
		blob.StreamSeqs[k] = seq
	}
	return json.Marshal(blob)
}

// UnmarshalBinary restores a Service serialized by MarshalBinary,
// replacing the current stream set wholesale. The receiver's options are
// retained for streams created after the restore; restored streams carry
// their own serialized configuration. Self-monitoring hit-rate windows
// restart empty — the correctness metric describes the running deployment,
// not the archived history.
//
// Restore is safe while serving: every restored stream has its forecast
// snapshot computed and published (adoptStream) before replaceStreams
// republishes the lock-free read index, so once UnmarshalBinary returns,
// no reader can resolve a pre-restore stream or see a stale bound —
// readers mid-flight on old stream pointers finish against the old,
// internally consistent snapshots.
func (s *Service) UnmarshalBinary(data []byte) error {
	var blob serviceBlob
	if err := json.Unmarshal(data, &blob); err != nil {
		return fmt.Errorf("qbets: %w: %v", ErrCorruptState, err)
	}
	restored := make(map[string]*stream, len(blob.Streams))
	for k, fb := range blob.Streams {
		fc := New()
		if err := fc.UnmarshalBinary(fb); err != nil {
			return fmt.Errorf("qbets: %w: stream %q: %v", ErrCorruptState, k, err)
		}
		restored[k] = s.adoptStream(k, fc, blob.StreamSeqs[k])
	}
	s.byProcs.Store(blob.ByProcs)
	s.nextSeed.Store(blob.NextSeed)
	s.replaceStreams(restored)
	return nil
}

// SaveFile writes the service's state to a file. When a write-ahead log is
// attached, a successful save also compacts it: the log is rotated before
// the snapshot is taken, and once the snapshot is durably on disk the
// segments it fully covers are deleted. The ordering makes the window
// crash-safe in both directions — a crash before the snapshot lands leaves
// every segment in place (recovery replays a little extra, skipped via the
// per-stream sequence numbers), and segments are only deleted after the
// snapshot that supersedes them is readable. Compaction failures are
// counted but do not fail the save: the snapshot is good, the log is
// merely longer than necessary.
func (s *Service) SaveFile(path string) error {
	cut, rotated := s.preSaveRotate()
	blob, err := s.MarshalBinary()
	if err != nil {
		return err
	}
	if err := writeFileAtomic(path, blob); err != nil {
		return err
	}
	s.postSaveCompact(cut, rotated)
	return nil
}

// preSaveRotate rotates the attached WAL (if any) ahead of a snapshot so
// the segments the snapshot covers can be compacted afterwards. Rotation
// failure is counted, not fatal: the save proceeds, the log just is not
// compacted this round.
func (s *Service) preSaveRotate() (cut uint64, rotated bool) {
	if s.wal == nil {
		return 0, false
	}
	var err error
	if cut, err = s.wal.Rotate(); err != nil {
		s.walCompactErrors.Inc()
		return 0, false
	}
	return cut, true
}

// postSaveCompact deletes the WAL segments a durable snapshot supersedes.
// Best-effort by design: the snapshot is already good.
func (s *Service) postSaveCompact(cut uint64, rotated bool) {
	if !rotated {
		return
	}
	if err := s.wal.RemoveSegmentsBelow(cut); err != nil {
		s.walCompactErrors.Inc()
	}
}

// QuarantineStateFile moves an unreadable state file aside to
// <path>.corrupt-<unixtime> so the process can start fresh without
// destroying the evidence (or the chance of manual recovery). It returns
// the quarantine path.
func QuarantineStateFile(path string) (string, error) {
	quarantine := fmt.Sprintf("%s.corrupt-%d", path, time.Now().Unix())
	if err := os.Rename(path, quarantine); err != nil {
		return "", err
	}
	return quarantine, nil
}

// LoadServiceFile restores a Service from a state file. splitByProcs and
// opts apply to streams created after the restore.
func LoadServiceFile(path string, splitByProcs bool, opts ...Option) (*Service, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := NewService(splitByProcs, opts...)
	if err := s.UnmarshalBinary(blob); err != nil {
		return nil, err
	}
	return s, nil
}

// Interval is a two-sided confidence interval on a quantile of queue
// delay: with the stated confidence, the quantile lies in [Low, High].
type Interval struct {
	Quantile   float64
	Confidence float64
	Low, High  float64
	OK         bool
}

// ForecastInterval returns a two-sided confidence interval for the q
// quantile, built from two one-sided bounds at confidence
// (1 + confidence)/2 each (Bonferroni: the pair holds jointly with at
// least the requested confidence). The paper notes the method extends to
// two-sided intervals this way (Section 3).
func (f *Forecaster) ForecastInterval(q, confidence float64) Interval {
	side := (1 + confidence) / 2
	lo := f.ForecastQuantile(q, side, true)
	hi := f.ForecastQuantile(q, side, false)
	return Interval{
		Quantile:   q,
		Confidence: confidence,
		Low:        lo.Seconds,
		High:       hi.Seconds,
		OK:         lo.OK && hi.OK,
	}
}
