package qbets

import (
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestForecasterQuickstart(t *testing.T) {
	f := New()
	if f.MinObservations() != 59 {
		t.Fatalf("MinObservations = %d", f.MinObservations())
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 58; i++ {
		f.Observe(math.Exp(rng.NormFloat64()) * 100)
	}
	if _, ok := f.Forecast(); ok {
		t.Fatal("forecast before minimum history")
	}
	f.Observe(100)
	if _, ok := f.Forecast(); !ok {
		t.Fatal("forecast unavailable at minimum history")
	}
	if f.Observations() != 59 {
		t.Fatalf("Observations = %d", f.Observations())
	}
}

func TestForecasterCoverage(t *testing.T) {
	f := New(WithSeed(3))
	rng := rand.New(rand.NewSource(3))
	scored, covered := 0, 0
	for i := 0; i < 10000; i++ {
		w := math.Exp(1.5 * rng.NormFloat64() * 2)
		if bound, ok := f.Forecast(); ok && i > 200 {
			scored++
			if w <= bound {
				covered++
			}
		}
		f.Observe(w)
	}
	if frac := float64(covered) / float64(scored); frac < 0.945 {
		t.Errorf("coverage %.3f", frac)
	}
}

func TestForecasterOptions(t *testing.T) {
	f := New(WithQuantile(0.5), WithConfidence(0.9), WithMaxHistory(100), WithoutTrimming(), WithSeed(7))
	if f.MinObservations() >= 59 {
		t.Error("median bound needs far fewer observations")
	}
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 300; i++ {
		f.Observe(rng.Float64() * 100)
	}
	if f.Observations() != 100 {
		t.Errorf("MaxHistory ignored: %d", f.Observations())
	}
	nt := New(WithoutTrimming(), WithFixedChangeThreshold(2), WithSeed(1))
	for i := 0; i < 100; i++ {
		nt.Observe(1)
	}
	for i := 0; i < 10; i++ {
		nt.Observe(1e6)
	}
	if nt.ChangePoints() != 0 {
		t.Error("WithoutTrimming must disable change points")
	}
}

func TestForecasterChangePointAdaptation(t *testing.T) {
	f := New(WithFixedChangeThreshold(3), WithSeed(2))
	for i := 0; i < 500; i++ {
		f.Observe(10)
	}
	// Regime change: waits jump 100x and keep growing past the adapting
	// bound.
	for i := 0; i < 30; i++ {
		f.Observe(1000 * float64(i+1))
	}
	if f.ChangePoints() == 0 {
		t.Fatal("no change point detected")
	}
	if f.Observations() >= 500 {
		t.Fatal("history not trimmed")
	}
}

func TestForecastQuantileAndProfile(t *testing.T) {
	// Feed the values 1..1000 in shuffled order: a monotone ramp would be
	// a perpetual change point and trim the history down.
	f := New(WithSeed(4))
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	rand.New(rand.NewSource(20)).Shuffle(len(vals), func(i, j int) {
		vals[i], vals[j] = vals[j], vals[i]
	})
	for _, v := range vals {
		f.Observe(v)
	}
	prof := f.Profile()
	if len(prof) != 4 {
		t.Fatalf("profile size %d", len(prof))
	}
	if !prof[0].Lower || prof[0].Quantile != 0.25 {
		t.Error("first profile entry should be the 0.25 lower bound")
	}
	for i, b := range prof {
		if !b.OK {
			t.Fatalf("profile entry %d not OK", i)
		}
		if i > 0 && b.Seconds < prof[i-1].Seconds {
			t.Fatal("profile not ordered")
		}
	}
	med := f.ForecastQuantile(0.5, 0.95, false)
	if !med.OK || med.Seconds < 500 || med.Seconds > 560 {
		t.Errorf("median upper bound = %+v", med)
	}
	lower := f.ForecastQuantile(0.5, 0.95, true)
	if !lower.OK || lower.Seconds >= med.Seconds {
		t.Errorf("lower %g should undercut upper %g", lower.Seconds, med.Seconds)
	}
}

func TestProbabilityWithin(t *testing.T) {
	// History: the values 1..1000 shuffled. Bounds on quantile q sit a
	// little above 1000q, so a deadline of 600 should certify roughly
	// q ~ 0.55-0.58, and extreme deadlines saturate.
	f := New(WithSeed(14))
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	rand.New(rand.NewSource(14)).Shuffle(len(vals), func(i, j int) {
		vals[i], vals[j] = vals[j], vals[i]
	})
	for _, v := range vals {
		f.Observe(v)
	}
	q, ok := f.ProbabilityWithin(600)
	if !ok {
		t.Fatal("unavailable")
	}
	if q < 0.5 || q > 0.6 {
		t.Errorf("P(within 600) certified q = %.3f, want ~0.55", q)
	}
	// A deadline above everything certifies the top of the grid.
	qHi, _ := f.ProbabilityWithin(1e9)
	if qHi < 0.99 {
		t.Errorf("huge deadline q = %.3f", qHi)
	}
	// A deadline below everything certifies nothing.
	qLo, _ := f.ProbabilityWithin(0.5)
	if qLo != 0 {
		t.Errorf("tiny deadline q = %.3f", qLo)
	}
	// Monotone in the deadline.
	prev := -1.0
	for _, d := range []float64{10, 100, 300, 700, 2000} {
		q, _ := f.ProbabilityWithin(d)
		if q < prev {
			t.Fatalf("not monotone at deadline %g", d)
		}
		prev = q
	}
	// A single observation legitimately supports only the most modest
	// statements: 1 − 0.05¹ ≥ 0.95, so the 0.05 quantile is bounded but
	// nothing much beyond it.
	g := New()
	g.Observe(1)
	if q, ok := g.ProbabilityWithin(100); ok && q > 0.1 {
		t.Errorf("one observation certified q = %.3f", q)
	}
	// No observations at all: unavailable.
	h := New()
	if _, ok := h.ProbabilityWithin(100); ok {
		t.Error("empty history should be unavailable")
	}
}

func TestFitDiagnostic(t *testing.T) {
	// Near-log-normal history: the diagnostic does not reject.
	f := New(WithSeed(11))
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		f.Observe(math.Exp(6 + rng.NormFloat64()))
	}
	_, p := f.FitDiagnostic()
	if p < 0.001 {
		t.Errorf("log-normal history rejected: p=%g", p)
	}
	// Bimodal history (congestion episodes): decisively rejected.
	g := New(WithoutTrimming(), WithSeed(12))
	for i := 0; i < 3000; i++ {
		w := math.Exp(3 + 0.1*rng.NormFloat64())
		if i%12 == 0 {
			w = math.Exp(11 + 0.1*rng.NormFloat64())
		}
		g.Observe(w)
	}
	d, p2 := g.FitDiagnostic()
	if p2 > 1e-6 {
		t.Errorf("bimodal history accepted: D=%g p=%g", d, p2)
	}
}

func TestNewPanicsOnBadLevels(t *testing.T) {
	for _, opts := range [][]Option{
		{WithQuantile(1.5)},
		{WithQuantile(-0.1)},
		{WithConfidence(0)},
		{WithConfidence(2)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %d options", len(opts))
				}
			}()
			New(opts...)
		}()
	}
}

func TestCategoryOf(t *testing.T) {
	if CategoryOf(3).Label() != "1-4" || CategoryOf(100).Label() != "65+" {
		t.Error("category mapping")
	}
}

func TestService(t *testing.T) {
	s := NewService(true, WithQuantile(0.9))
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		s.Observe("normal", 2, math.Exp(rng.NormFloat64()))
		s.Observe("normal", 32, 100*math.Exp(rng.NormFloat64()))
		s.Observe("high", 2, 0.1*math.Exp(rng.NormFloat64()))
	}
	small, ok1 := s.Forecast("normal", 4)  // same 1-4 category as procs=2
	large, ok2 := s.Forecast("normal", 20) // 17-64 category
	if !ok1 || !ok2 {
		t.Fatal("forecasts unavailable")
	}
	if large <= small {
		t.Errorf("expected category separation: %g vs %g", small, large)
	}
	if len(s.Queues()) != 3 {
		t.Errorf("queues: %v", s.Queues())
	}
	// Unsplit service merges categories.
	u := NewService(false)
	for i := 0; i < 100; i++ {
		u.Observe("normal", 2, 1)
		u.Observe("normal", 128, 1000)
	}
	if len(u.Queues()) != 1 {
		t.Errorf("unsplit queues: %v", u.Queues())
	}
}

func TestTraceRoundTripAndEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := Trace{Machine: "m", Queue: "q"}
	for i := 0; i < 3000; i++ {
		tr.Jobs = append(tr.Jobs, Job{
			Submit:      int64(i * 600),
			WaitSeconds: math.Round(math.Exp(2 + rng.NormFloat64())),
			Procs:       1 << (i % 6),
		})
	}
	path := filepath.Join(t.TempDir(), "q.trace")
	if err := WriteTraceFile(path, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != len(tr.Jobs) || back.Machine != "m" {
		t.Fatal("roundtrip")
	}

	reports := Evaluate(back, EvalConfig{})
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	if reports[0].Method != "bmbp" {
		t.Errorf("first method = %s", reports[0].Method)
	}
	// Stationary log-normal stream: every method should be correct.
	for _, r := range reports {
		if r.Scored == 0 {
			t.Fatalf("%s scored nothing", r.Method)
		}
		if r.CorrectFraction < 0.95 {
			t.Errorf("%s correct fraction %.3f", r.Method, r.CorrectFraction)
		}
		if r.MedianRatio <= 0 || r.MedianRatio > 1 {
			t.Errorf("%s median ratio %g", r.Method, r.MedianRatio)
		}
	}
}

func TestReadTraceError(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("bogus line")); err == nil {
		t.Error("malformed trace should fail")
	}
	if _, err := ReadTraceFile("/nonexistent/path"); err == nil {
		t.Error("missing file should fail")
	}
}
