package qbets

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/wal"
)

// Follower mode. A follower Service serves the lock-free forecast plane
// from replicated state and refuses writes: observations reach it only
// through ApplyReplicated (shipped WAL batches) and
// InstallReplicaSnapshot (catch-up), both driven by a repl.Follower. The
// apply path is the WAL-recovery machinery — replayGroupLocked with
// per-stream lastSeq dedup — so a replicated record folds in exactly as
// it would have during crash recovery on the leader, and re-delivery is
// harmless. Because the leader ships only records at or below its
// durability watermark, in log order, the follower's state is always a
// consistent prefix of the leader's acked log.

// ErrNotLeader reports a write sent to a follower: this node replicates
// from a leader and serves reads only. Clients should retry against the
// leader (or wait out a failover).
var ErrNotLeader = errors.New("qbets: not the leader: this node serves follower reads only")

// ErrReplicaGap reports a shipped batch that does not extend the
// follower's applied prefix — records were lost or reordered in transit.
// The replication session reconnects and renegotiates position.
var ErrReplicaGap = errors.New("qbets: replicated batch does not extend the applied prefix")

// replicaState is the wire form of a catch-up snapshot: the sharded save
// format's per-stream cores, plus the service header, in one document.
// The covered sequence travels alongside it in the protocol message.
type replicaState struct {
	ByProcs  bool                   `json:"by_procs"`
	NextSeed int64                  `json:"next_seed"`
	Streams  map[string]shardStream `json:"streams"`
}

// SetFollower switches the service's write gate. Set it before the node
// takes traffic; Promote clears it after a failover.
func (s *Service) SetFollower(on bool) { s.follower.Store(on) }

// IsFollower reports whether writes are refused with ErrNotLeader.
func (s *Service) IsFollower() bool { return s.follower.Load() }

// SetCommitHook installs fn on the leader's write path: it runs after an
// observation batch is durable in the local WAL and applied, outside
// every stream lock, with the batch's last sequence number. A
// synchronous-replication leader points it at repl.Leader.CommitWait, so
// an observe acks only once a follower holds the records — and a fenced
// leader can never ack at all. A hook failure refuses the observe
// (wrapped in ErrReadOnly, so clients see the same 503-and-retry
// contract as a degraded log); the records are already durable and
// applied locally, so nothing acked is ever lost — only un-acked work
// can need reconciling, through recovery or a follower re-sync.
//
// The hook runs lock-free so a commit wait cannot deadlock against a
// catch-up snapshot, which read-locks every stream.
//
// Install before the service takes traffic.
func (s *Service) SetCommitHook(fn func(lastSeq uint64) error) { s.commitHook = fn }

// ReplicaAppliedSeq reports the highest replicated sequence folded into
// this follower's state — the position it renegotiates from on reconnect.
func (s *Service) ReplicaAppliedSeq() uint64 { return s.replApplied.Load() }

// SyncProbeInterval reports the attached WAL's background sync cadence
// (zero when none is attached or syncs are per-record): the honest
// Retry-After for a read-only refusal, since that is how long an append
// failure takes to self-heal or re-confirm.
func (s *Service) SyncProbeInterval() time.Duration {
	if s.wal == nil {
		return 0
	}
	return s.wal.SyncProbeInterval()
}

// ApplyReplicated folds one shipped batch into follower state. prevSeq is
// the sequence the batch extends: a batch from the future (prevSeq above
// the applied prefix) is refused with ErrReplicaGap, a batch from the
// past re-applies as a no-op through the per-stream dedup. Quotes are not
// scored — this process never made them — exactly as WAL replay.
func (s *Service) ApplyReplicated(prevSeq uint64, recs []wal.Record) error {
	if !s.follower.Load() {
		return fmt.Errorf("qbets: ApplyReplicated on a non-follower")
	}
	if len(recs) == 0 {
		return nil
	}
	applied := s.replApplied.Load()
	if prevSeq > applied {
		return fmt.Errorf("%w: batch extends seq %d but only %d is applied", ErrReplicaGap, prevSeq, applied)
	}
	type group struct {
		st    *stream
		waits []float64
		seqs  []uint64
	}
	groups := make(map[*stream]*group)
	order := make([]*group, 0, 4)
	for _, r := range recs {
		st := s.getOrCreate(r.Key)
		g := groups[st]
		if g == nil {
			g = &group{st: st}
			groups[st] = g
			order = append(order, g)
		}
		g.waits = append(g.waits, r.Wait)
		g.seqs = append(g.seqs, r.Seq)
	}
	for _, g := range order {
		g.st.mu.Lock()
		if g.st.fc == nil {
			if err := g.st.rehydrateLocked(s); err != nil {
				g.st.mu.Unlock()
				return err
			}
		}
		g.st.replayGroupLocked(s, g.waits, g.seqs)
		g.st.mu.Unlock()
	}
	if last := recs[len(recs)-1].Seq; last > applied {
		s.replApplied.Store(last)
	}
	return nil
}

// ReplicaSnapshot captures the full serving state for follower catch-up:
// every stream's saved core (the sharded on-disk format, marshaled to one
// document) and the log sequence the snapshot covers. The covered
// sequence is read BEFORE any stream is marshaled: a record at or below
// it was durable — and therefore applied, under the same stream lock hold
// as its append — before the capture began, so the per-stream read locks
// taken during marshaling are guaranteed to observe it. Records applied
// during the capture may leak in; their sequence anchors ride along in
// the stream cores, so the follower's replay dedup drops the overlap.
func (s *Service) ReplicaSnapshot() (coveredSeq uint64, blob []byte, err error) {
	if s.wal != nil {
		coveredSeq = s.wal.SyncedSeq()
	}
	// A promoted leader's replicated prefix may sit above its (fresh)
	// local log's watermark; the snapshot covers that prefix too.
	if ra := s.replApplied.Load(); ra > coveredSeq {
		coveredSeq = ra
	}
	streams := s.snapshotStreams()
	doc := replicaState{
		ByProcs:  s.byProcs.Load(),
		NextSeed: s.nextSeed.Load(),
		Streams:  make(map[string]shardStream, len(streams)),
	}
	for k, st := range streams {
		core, cerr := coreOf(k, st)
		if cerr != nil {
			return 0, nil, cerr
		}
		doc.Streams[k] = core
	}
	blob, err = json.Marshal(doc)
	if err != nil {
		return 0, nil, err
	}
	return coveredSeq, blob, nil
}

// InstallReplicaSnapshot replaces the follower's state wholesale with a
// leader snapshot — the same cold-adoption path as a sharded restore, so
// a million-stream install decodes no forecaster history.
func (s *Service) InstallReplicaSnapshot(coveredSeq uint64, blob []byte) error {
	if !s.follower.Load() {
		return fmt.Errorf("qbets: InstallReplicaSnapshot on a non-follower")
	}
	var doc replicaState
	if err := json.Unmarshal(blob, &doc); err != nil {
		return fmt.Errorf("qbets: %w: replica snapshot: %v", ErrCorruptState, err)
	}
	restored := make(map[string]*stream, len(doc.Streams))
	for k, core := range doc.Streams {
		restored[k] = s.adoptColdStream(k, core)
	}
	s.byProcs.Store(doc.ByProcs)
	s.nextSeed.Store(doc.NextSeed)
	s.replaceStreams(restored)
	// The installed state is authoritative: it replaced whatever was
	// applied before, so the position resets to what it covers.
	s.replApplied.Store(coveredSeq)
	return nil
}

// Promote turns a follower into a leader after a failover: it attaches
// (and replays) the node's own WAL, advances the log's sequence space
// past the replicated prefix — new appends must land above the old
// leader's records or recovery would dedup them away — and only then
// opens the write gate. The atomic follower flag is the
// happens-before edge: a writer that observes the gate open also
// observes the attached WAL and advanced sequence space.
//
// The caller claims the new epoch first (repl.Follower.Promote persists
// it) and afterwards stands up a repl.Leader with it; a deposed ex-leader
// is fenced on first contact.
func (s *Service) Promote(w *wal.WAL) (wal.ReplayStats, error) {
	if !s.follower.Load() {
		return wal.ReplayStats{}, fmt.Errorf("qbets: Promote on a non-follower")
	}
	stats, err := s.RecoverWAL(w)
	if err != nil {
		return stats, err
	}
	s.wal.AdvanceSeq(s.replApplied.Load())
	s.follower.Store(false)
	return stats, nil
}
