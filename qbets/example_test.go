package qbets_test

import (
	"fmt"
	"math"
	"math/rand"

	"repro/qbets"
)

// The godoc examples double as executable documentation: each replays a
// deterministic synthetic history and prints the forecast a user would get.

func ExampleNew() {
	f := qbets.New() // 0.95 quantile at 95% confidence

	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		wait := math.Round(600 * math.Exp(rng.NormFloat64()))
		f.Observe(wait)
	}
	bound, ok := f.Forecast()
	fmt.Printf("ok=%v bound=%.0fs\n", ok, bound)
	// Output: ok=true bound=3516s
}

func ExampleForecaster_ProbabilityWithin() {
	f := qbets.New(qbets.WithSeed(2))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		f.Observe(math.Round(120 * math.Exp(rng.NormFloat64())))
	}
	q, _ := f.ProbabilityWithin(600) // ten minutes
	fmt.Printf("at least %.0f%% of submissions start within 10 minutes\n", q*100)
	// Output: at least 94% of submissions start within 10 minutes
}

func ExampleForecaster_Profile() {
	f := qbets.New(qbets.WithSeed(3))
	for i := 1; i <= 500; i++ {
		f.Observe(float64(i % 100))
	}
	for _, b := range f.Profile() {
		side := "<="
		if b.Lower {
			side = ">="
		}
		fmt.Printf("q%.0f %s %.0fs\n", b.Quantile*100, side, b.Seconds)
	}
	// Output:
	// q25 >= 24s
	// q50 <= 55s
	// q75 <= 79s
	// q95 <= 96s
}

func ExampleService() {
	svc := qbets.NewService(true) // split by processor category
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		svc.Observe("normal", 2, math.Round(60*math.Exp(0.3*rng.NormFloat64())))
		svc.Observe("normal", 64, math.Round(7200*math.Exp(0.3*rng.NormFloat64())))
	}
	small, _ := svc.Forecast("normal", 1)
	large, _ := svc.Forecast("normal", 50)
	fmt.Printf("small job bound %.0fs, large job bound %.0fs\n", small, large)
	// Output: small job bound 99s, large job bound 12351s
}
