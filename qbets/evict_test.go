package qbets

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/wal"
)

// TestEvictRehydrateExact checks the lifecycle's core contract: eviction
// is invisible to readers (same bound, same profile, same counters) and a
// write to a cold stream rehydrates to exactly the state an never-evicted
// oracle has.
func TestEvictRehydrateExact(t *testing.T) {
	svc := NewService(false, WithSeed(5))
	oracle := NewService(false, WithSeed(5))
	wait := func(i int) float64 { return math.Exp(math.Sin(float64(i))) * 60 }
	for i := 0; i < 150; i++ {
		svc.Observe("q", 1, wait(i))
		oracle.Observe("q", 1, wait(i))
	}
	wantBound, wantOK := oracle.Forecast("q", 1)
	wantProfile := oracle.Profile("q", 1)

	if n := svc.EvictIdle(0); n != 1 {
		t.Fatalf("EvictIdle evicted %d streams, want 1", n)
	}
	if svc.LiveStreams() != 0 || svc.NumStreams() != 1 {
		t.Fatalf("live=%d total=%d after eviction, want 0/1", svc.LiveStreams(), svc.NumStreams())
	}

	// Cold reads: every read API answers exactly, with no rehydration.
	if b, ok := svc.Forecast("q", 1); ok != wantOK || b != wantBound {
		t.Fatalf("cold Forecast = (%g,%v), want (%g,%v)", b, ok, wantBound, wantOK)
	}
	p := svc.Profile("q", 1)
	if len(p) != len(wantProfile) {
		t.Fatalf("cold Profile has %d entries, want %d", len(p), len(wantProfile))
	}
	for i := range p {
		if p[i] != wantProfile[i] {
			t.Fatalf("cold Profile[%d] = %+v, want %+v", i, p[i], wantProfile[i])
		}
	}
	if n := svc.Observations("q", 1); n != oracle.Observations("q", 1) {
		t.Fatalf("cold Observations = %d, want %d", n, oracle.Observations("q", 1))
	}
	if svc.LiveStreams() != 0 {
		t.Fatal("reads rehydrated a cold stream")
	}

	// A write rehydrates and the merged history matches the oracle.
	for i := 150; i < 200; i++ {
		if err := svc.Observe("q", 1, wait(i)); err != nil {
			t.Fatalf("observe after eviction: %v", err)
		}
		oracle.Observe("q", 1, wait(i))
	}
	if svc.LiveStreams() != 1 {
		t.Fatalf("LiveStreams = %d after write, want 1", svc.LiveStreams())
	}
	gotB, gotOK := svc.Forecast("q", 1)
	wantB, wantOK2 := oracle.Forecast("q", 1)
	if gotOK != wantOK2 || gotB != wantB {
		t.Fatalf("post-rehydrate Forecast = (%g,%v), oracle (%g,%v)", gotB, gotOK, wantB, wantOK2)
	}
	if got, want := svc.Observations("q", 1), oracle.Observations("q", 1); got != want {
		t.Fatalf("post-rehydrate Observations = %d, oracle %d", got, want)
	}
}

// TestEvictToCap checks the hydrated-stream cap: the longest-idle streams
// go cold first and the registry itself never shrinks.
func TestEvictToCap(t *testing.T) {
	svc := NewService(false, WithSeed(9))
	const n = 40
	for i := 0; i < n; i++ {
		svc.Observe(fmt.Sprintf("q%02d", i), 1, float64(i))
	}
	// Age the first half: advance the clock (as an eviction pass would),
	// then touch the second half so only the first half stays stale.
	svc.EvictIdle(24 * time.Hour) // evicts nothing, but advances the clock
	for i := n / 2; i < n; i++ {
		svc.Observe(fmt.Sprintf("q%02d", i), 1, 1)
	}
	if got := svc.EvictToCap(25); got != n-25 {
		t.Fatalf("EvictToCap(25) evicted %d, want %d", got, n-25)
	}
	if live := svc.LiveStreams(); live != 25 {
		t.Fatalf("LiveStreams = %d, want 25", live)
	}
	if svc.NumStreams() != n {
		t.Fatalf("NumStreams = %d, want %d (eviction must not drop streams)", svc.NumStreams(), n)
	}
	// The stale half must be the evicted one.
	for i := n / 2; i < n; i++ {
		st := svc.lookup(fmt.Sprintf("q%02d", i))
		if st.evicted.Load() {
			t.Fatalf("recently touched stream q%02d was evicted before idle ones", i)
		}
	}
	// Under the cap: another pass is a no-op.
	if got := svc.EvictToCap(25); got != 0 {
		t.Fatalf("second EvictToCap evicted %d, want 0", got)
	}
}

// TestEvictWALReplayOracle is the eviction↔recovery property test: a
// service takes WAL-logged traffic with eviction passes and snapshot saves
// interleaved, crashes, and recovers — and the recovered state must be
// byte-equivalent per stream to an oracle that saw the same observations
// with no WAL, no snapshots, no evictions, and no crash. This pins the
// three-way interaction: evicted streams serialize their cold blob into
// snapshots, replay rehydrates cold streams before folding in the log
// tail, and per-stream sequence anchors stay exact across all of it.
func TestEvictWALReplayOracle(t *testing.T) {
	dir := t.TempDir()
	stateDir := filepath.Join(dir, "state")
	walDir := filepath.Join(dir, "wal")

	w, err := wal.Open(walDir, wal.Options{Mode: wal.SyncEachRecord, SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(false, WithSeed(21))
	if _, err := svc.RecoverWAL(w); err != nil {
		t.Fatal(err)
	}

	const queues = 6
	const rounds = 8
	const perRound = 40
	wait := func(q, i int) float64 { return math.Exp(math.Sin(float64(q*1000+i))) * 30 }
	obsCount := make([]int, queues)
	observeRound := func(s *Service, r int) {
		for q := 0; q < queues; q++ {
			if r%2 == 0 || q%2 == 0 { // uneven traffic: some streams idle some rounds
				for i := 0; i < perRound; i++ {
					if err := s.Observe(fmt.Sprintf("q%d", q), 1, wait(q, obsCount[q]+i)); err != nil {
						t.Fatalf("observe: %v", err)
					}
				}
				obsCount[q] += perRound
			}
		}
	}
	for r := 0; r < rounds; r++ {
		observeRound(svc, r)
		switch r % 3 {
		case 0:
			// Evict everything idle; mid-run cold streams must keep
			// accepting replayed-on-top writes next round.
			svc.EvictIdle(0)
		case 1:
			// Sharded snapshot mid-traffic with a mix of hot and cold
			// streams; compacts the WAL under the recovery anchor.
			if err := svc.SaveShards(stateDir, 4); err != nil {
				t.Fatalf("SaveShards: %v", err)
			}
		}
	}
	// Crash: drop svc without a final save. Recover from the last sharded
	// snapshot plus the surviving log tail.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadServiceShards(stateDir, false, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	if restored.LiveStreams() != 0 {
		t.Fatalf("sharded restore hydrated %d streams, want 0 (cold adoption)", restored.LiveStreams())
	}
	w2, err := wal.Open(walDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.RecoverWAL(w2); err != nil {
		t.Fatal(err)
	}

	oracle := NewService(false, WithSeed(21))
	obsCount = make([]int, queues) // reset: replay the same schedule into the oracle
	for r := 0; r < rounds; r++ {
		observeRound(oracle, r)
	}
	if restored.NumStreams() != oracle.NumStreams() {
		t.Fatalf("restored %d streams, oracle %d", restored.NumStreams(), oracle.NumStreams())
	}
	for q := 0; q < queues; q++ {
		name := fmt.Sprintf("q%d", q)
		if got, want := restored.Observations(name, 1), oracle.Observations(name, 1); got != want {
			t.Fatalf("queue %s: restored %d observations, oracle %d", name, got, want)
		}
		gotB, gotOK := restored.Forecast(name, 1)
		wantB, wantOK := oracle.Forecast(name, 1)
		if gotOK != wantOK || gotB != wantB {
			t.Fatalf("queue %s: restored bound (%g,%v), oracle (%g,%v)", name, gotB, gotOK, wantB, wantOK)
		}
	}
}

// TestEvictIdleRespectsTTL checks that a TTL longer than every stream's
// idle time evicts nothing.
func TestEvictIdleRespectsTTL(t *testing.T) {
	svc := NewService(false, WithSeed(2))
	svc.Observe("fresh", 1, 1)
	if n := svc.EvictIdle(24 * time.Hour); n != 0 {
		t.Fatalf("EvictIdle(24h) evicted %d fresh streams", n)
	}
	if svc.LiveStreams() != 1 {
		t.Fatal("fresh stream went cold under a generous TTL")
	}
}
