package qbets

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/wal"
)

func makeBatchRecords(rng *rand.Rand, n int) []ObserveRecord {
	queues := []string{"normal", "high", "low", "debug"}
	recs := make([]ObserveRecord, n)
	for i := range recs {
		recs[i] = ObserveRecord{
			Queue:       queues[rng.Intn(len(queues))],
			Procs:       1 + rng.Intn(100),
			WaitSeconds: rng.ExpFloat64() * 600,
		}
	}
	return recs
}

// assertSameState compares per-stream observation counts and forecast
// bounds for every stream the records touch. It deliberately does not
// compare NumStreams: a refused observe (read-only) leaves an empty stream
// shell behind on both the single and batch paths, which an oracle that
// never saw the refusal does not have.
func assertSameState(t *testing.T, got, want *Service, records []ObserveRecord) {
	t.Helper()
	seen := map[string]bool{}
	for _, r := range records {
		k := fmt.Sprintf("%s/%d", r.Queue, r.Procs)
		if seen[k] {
			continue
		}
		seen[k] = true
		if g, w := got.Observations(r.Queue, r.Procs), want.Observations(r.Queue, r.Procs); g != w {
			t.Fatalf("%s: %d observations, oracle %d", k, g, w)
		}
		gb, gok := got.Forecast(r.Queue, r.Procs)
		wb, wok := want.Forecast(r.Queue, r.Procs)
		if gok != wok || gb != wb {
			t.Fatalf("%s: forecast (%g,%v), oracle (%g,%v)", k, gb, gok, wb, wok)
		}
	}
}

// TestObserveBatchMatchesSequentialObserve is the batch-apply equivalence
// property: per-record bound scoring and change-point trims happen inside
// each observation, so applying a stream's group under one lock with one
// final refit must land in exactly the state of per-record Observe calls.
// Sizes straddle the internal chunk boundary, and both routing modes and
// both WAL configurations are covered.
func TestObserveBatchMatchesSequentialObserve(t *testing.T) {
	for _, byProcs := range []bool{false, true} {
		for _, withWAL := range []bool{false, true} {
			name := fmt.Sprintf("byProcs=%v/wal=%v", byProcs, withWAL)
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(42))
				records := makeBatchRecords(rng, 700) // > 2 chunks

				batched := NewService(byProcs, WithSeed(1))
				if withWAL {
					w, err := wal.Open("wal", wal.Options{FS: wal.NewMemFS(), Mode: wal.SyncEachRecord})
					if err != nil {
						t.Fatal(err)
					}
					if _, err := batched.RecoverWAL(w); err != nil {
						t.Fatal(err)
					}
				}
				// Mixed batch sizes: singletons, small, and multi-chunk.
				for i := 0; i < len(records); {
					n := []int{1, 7, 300}[i%3]
					if i+n > len(records) {
						n = len(records) - i
					}
					applied, err := batched.ObserveBatch(records[i : i+n])
					if err != nil {
						t.Fatalf("batch at %d: %v", i, err)
					}
					if applied != n {
						t.Fatalf("batch at %d applied %d of %d", i, applied, n)
					}
					i += n
				}

				oracle := NewService(byProcs, WithSeed(1))
				for _, r := range records {
					if err := oracle.Observe(r.Queue, r.Procs, r.WaitSeconds); err != nil {
						t.Fatal(err)
					}
				}
				if g, w := batched.NumStreams(), oracle.NumStreams(); g != w {
					t.Fatalf("stream count %d, oracle %d", g, w)
				}
				assertSameState(t, batched, oracle, records)
			})
		}
	}
}

// TestObserveBatchValidation: an invalid wait anywhere in the batch rejects
// the whole batch up front — nothing applied, nothing logged — and the
// error pinpoints the offending index.
func TestObserveBatchValidation(t *testing.T) {
	svc := NewService(false, WithSeed(1))
	recs := []ObserveRecord{
		{Queue: "q", Procs: 1, WaitSeconds: 1},
		{Queue: "q", Procs: 1, WaitSeconds: -3},
	}
	applied, err := svc.ObserveBatch(recs)
	if applied != 0 || !errors.Is(err, ErrInvalidWait) {
		t.Fatalf("applied %d, err %v; want 0, ErrInvalidWait", applied, err)
	}
	var be *BatchError
	if !errors.As(err, &be) || be.Index != 1 {
		t.Fatalf("error %v does not carry index 1", err)
	}
	if svc.Observations("q", 1) != 0 {
		t.Fatal("records applied despite validation failure")
	}

	if applied, err := svc.ObserveBatch(nil); applied != 0 || err != nil {
		t.Fatalf("empty batch: (%d, %v)", applied, err)
	}
}

// TestObserveBatchPartialFailure is the mid-batch read-only contract under
// fault injection: when the WAL is poisoned partway through a large batch,
// ObserveBatch reports exactly how many leading records were applied (a
// whole number of chunks), the error unwraps to ErrReadOnly and carries
// the first unapplied index, the applied prefix matches a per-record
// oracle, and after the disk heals the client retries the remainder to
// reach full-batch state.
func TestObserveBatchPartialFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	records := makeBatchRecords(rng, 700)

	sawPartial := false
	for n := 0; n < 40 && !sawPartial; n++ {
		fs := wal.NewFaultFS(wal.NewMemFS())
		w, err := wal.Open("wal", wal.Options{FS: fs, Mode: wal.SyncEachRecord})
		if err != nil {
			t.Fatal(err)
		}
		svc := NewService(false, WithSeed(1))
		if _, err := svc.RecoverWAL(w); err != nil {
			t.Fatal(err)
		}

		fs.FailWritesAfter(n, errors.New("disk full"), false)
		applied, err := svc.ObserveBatch(records)
		fs.Clear()

		if err == nil {
			if applied != len(records) {
				t.Fatalf("n=%d: nil error but only %d applied", n, applied)
			}
			break // fault budget outlasted the whole batch
		}
		if !errors.Is(err, ErrReadOnly) {
			t.Fatalf("n=%d: err = %v, want ErrReadOnly", n, err)
		}
		var be *BatchError
		if !errors.As(err, &be) || be.Index != applied {
			t.Fatalf("n=%d: error %v does not carry first unapplied index %d", n, err, applied)
		}
		if applied%observeBatchChunk != 0 {
			t.Fatalf("n=%d: applied %d is not a whole number of chunks", n, applied)
		}
		if !svc.ReadOnly() {
			t.Fatalf("n=%d: service not read-only after mid-batch failure", n)
		}
		if applied > 0 && applied < len(records) {
			sawPartial = true
		}

		// The applied prefix must be oracle-exact.
		oracle := NewService(false, WithSeed(1))
		for _, r := range records[:applied] {
			if err := oracle.Observe(r.Queue, r.Procs, r.WaitSeconds); err != nil {
				t.Fatal(err)
			}
		}
		assertSameState(t, svc, oracle, records)

		// Disk healed above (fs.Clear): the documented client move is to
		// retry the remainder, which must land in full-batch state.
		rest, err := svc.ObserveBatch(records[applied:])
		if err != nil {
			t.Fatalf("n=%d: retry after heal: %v", n, err)
		}
		if rest != len(records)-applied {
			t.Fatalf("n=%d: retry applied %d of %d", n, rest, len(records)-applied)
		}
		if svc.ReadOnly() {
			t.Fatalf("n=%d: read-only latch did not clear on successful retry", n)
		}
		full := NewService(false, WithSeed(1))
		for _, r := range records {
			if err := full.Observe(r.Queue, r.Procs, r.WaitSeconds); err != nil {
				t.Fatal(err)
			}
		}
		assertSameState(t, svc, full, records)
	}
	if !sawPartial {
		t.Fatal("no fault budget produced a genuine mid-batch partial failure")
	}
}

var recordIndexRe = regexp.MustCompile(`record (\d+)`)

// TestServerMidBatchReadOnlyRetry drives the same contract end to end over
// HTTP: a poisoned WAL mid-batch yields 503 with Retry-After and a body
// naming the first unapplied record, the observations counter reflects
// exactly the applied prefix, and retrying the remainder after the disk
// heals converges on the full-batch oracle state.
func TestServerMidBatchReadOnlyRetry(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	records := makeBatchRecords(rng, 700)
	body := func(recs []ObserveRecord) string {
		var sb strings.Builder
		sb.WriteByte('[')
		for i, r := range recs {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, `{"queue":%q,"procs":%d,"wait_seconds":%g}`, r.Queue, r.Procs, r.WaitSeconds)
		}
		sb.WriteByte(']')
		return sb.String()
	}

	for n := 0; n < 40; n++ {
		fs := wal.NewFaultFS(wal.NewMemFS())
		w, err := wal.Open("wal", wal.Options{FS: fs, Mode: wal.SyncEachRecord})
		if err != nil {
			t.Fatal(err)
		}
		svc := NewService(false, WithSeed(1))
		if _, err := svc.RecoverWAL(w); err != nil {
			t.Fatal(err)
		}
		srv := NewServerWith(svc)
		hts := httptest.NewServer(srv)
		ts := hts.URL
		t.Cleanup(hts.Close)

		fs.FailWritesAfter(n, errors.New("disk full"), false)
		resp := postJSON(t, ts+"/v1/observe", body(records))
		fs.Clear()

		if resp.StatusCode == http.StatusNoContent {
			continue // fault budget outlasted the batch at this n
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("n=%d: status %d, want 503", n, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "1" {
			t.Fatalf("n=%d: Retry-After = %q, want \"1\"", n, ra)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		m := recordIndexRe.FindStringSubmatch(string(raw))
		if m == nil {
			t.Fatalf("n=%d: 503 body %q does not name the first unapplied record", n, raw)
		}
		applied, err := strconv.Atoi(m[1])
		if err != nil || applied < 0 || applied >= len(records) {
			t.Fatalf("n=%d: implausible unapplied index %q", n, m[1])
		}

		// The observations metric must count exactly the applied prefix.
		mresp, err := http.Get(ts + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		mraw, _ := io.ReadAll(mresp.Body)
		mresp.Body.Close()
		if want := fmt.Sprintf("qbets_observations_total %d", applied); !strings.Contains(string(mraw), want) {
			t.Fatalf("n=%d: metrics missing %q", n, want)
		}

		// Client contract: wait, then resend everything not yet applied.
		retry := postJSON(t, ts+"/v1/observe", body(records[applied:]))
		if retry.StatusCode != http.StatusNoContent {
			t.Fatalf("n=%d: retry status %d", n, retry.StatusCode)
		}
		oracle := NewService(false, WithSeed(1))
		for _, r := range records {
			if err := oracle.Observe(r.Queue, r.Procs, r.WaitSeconds); err != nil {
				t.Fatal(err)
			}
		}
		assertSameState(t, svc, oracle, records)
		return // one genuine mid-batch 503 exercised end to end
	}
	t.Fatal("no fault budget produced a mid-batch 503 over HTTP")
}
