package qbets

import (
	"math"
	"strconv"
	"sync"
	"unicode/utf8"
)

// Append-based JSON encoding for the read-plane responses. The forecast
// and profile endpoints answer with tiny, fixed-shape payloads at the
// service's highest request rates; routing them through encoding/json
// costs reflection walks and a fresh encoder state per response. These
// helpers render the same bytes — including encoding/json's HTML-escaping
// and float formatting, verified by differential tests — into a pooled
// buffer, so the steady-state read path allocates nothing per request.

// maxPooledResponseBuf bounds the capacity a pooled response buffer may
// retain; a giant batch response's buffer is dropped rather than pinned.
const maxPooledResponseBuf = 1 << 18

type responseBuf struct {
	b []byte
}

var responseBufPool = sync.Pool{
	New: func() any { return &responseBuf{b: make([]byte, 0, 512)} },
}

func getResponseBuf() *responseBuf { return responseBufPool.Get().(*responseBuf) }

func (rb *responseBuf) release() {
	if cap(rb.b) > maxPooledResponseBuf {
		rb.b = nil
	}
	rb.b = rb.b[:0]
	responseBufPool.Put(rb)
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal with exactly
// encoding/json's default escaping: quotes, backslashes, control bytes,
// the HTML-sensitive characters <, >, &, the line separators U+2028 and
// U+2029, and invalid UTF-8 replaced by U+FFFD.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendJSONFloat appends f exactly as encoding/json renders a float64:
// shortest representation, fixed notation except for very small or very
// large magnitudes, with the exponent's leading zero stripped. NaN and
// infinities cannot reach this encoder (every encoded value is either a
// validated wait or a configured level); they render as 0 rather than
// corrupt the document.
func appendJSONFloat(dst []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(dst, '0')
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Match encoding/json: e-09 → e-9.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

func appendJSONBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

// appendForecastHead opens a ForecastResponse object through its queue and
// procs fields; appendForecastLevels / appendForecastTail complete it. The
// split lets the serving path splice in the server's pre-rendered
// quantile/confidence bytes — those two floats are fixed at construction,
// and shortest-float formatting is the most expensive part of the encode.
func appendForecastHead(dst []byte, queue string, procs int) []byte {
	dst = append(dst, `{"queue":`...)
	dst = appendJSONString(dst, queue)
	dst = append(dst, `,"procs":`...)
	return strconv.AppendInt(dst, int64(procs), 10)
}

// appendForecastLevels renders the quantile and confidence fields; the
// server caches this fragment once (see Server.levelsJSON).
func appendForecastLevels(dst []byte, quantile, confidence float64) []byte {
	dst = append(dst, `,"quantile":`...)
	dst = appendJSONFloat(dst, quantile)
	dst = append(dst, `,"confidence":`...)
	return appendJSONFloat(dst, confidence)
}

// appendForecastTail closes a ForecastResponse with its per-stream fields.
func appendForecastTail(dst []byte, boundSeconds float64, ok bool, observations int) []byte {
	dst = append(dst, `,"bound_seconds":`...)
	dst = appendJSONFloat(dst, boundSeconds)
	dst = append(dst, `,"ok":`...)
	dst = appendJSONBool(dst, ok)
	dst = append(dst, `,"observations":`...)
	dst = strconv.AppendInt(dst, int64(observations), 10)
	return append(dst, '}')
}

// appendForecastResponse renders one ForecastResponse object, field-for-
// field what encoding/json produces for the struct.
func appendForecastResponse(dst []byte, r *ForecastResponse) []byte {
	dst = appendForecastHead(dst, r.Queue, r.Procs)
	dst = appendForecastLevels(dst, r.Quantile, r.Confidence)
	return appendForecastTail(dst, r.BoundSeconds, r.OK, r.Observations)
}

// appendProfileEntries renders a Table 8 profile as the JSON array of
// ProfileEntry objects the profile endpoint has always served, straight
// from the published immutable []Bound.
func appendProfileEntries(dst []byte, bounds []Bound) []byte {
	dst = append(dst, '[')
	for i := range bounds {
		if i > 0 {
			dst = append(dst, ',')
		}
		b := &bounds[i]
		dst = append(dst, `{"quantile":`...)
		dst = appendJSONFloat(dst, b.Quantile)
		dst = append(dst, `,"confidence":`...)
		dst = appendJSONFloat(dst, b.Confidence)
		dst = append(dst, `,"side":`...)
		if b.Lower {
			dst = append(dst, `"lower"`...)
		} else {
			dst = append(dst, `"upper"`...)
		}
		dst = append(dst, `,"seconds":`...)
		dst = appendJSONFloat(dst, b.Seconds)
		dst = append(dst, `,"ok":`...)
		dst = appendJSONBool(dst, b.OK)
		dst = append(dst, '}')
	}
	return append(dst, ']')
}
