package qbets

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Service manages one Forecaster per (queue, processor category), the
// deployment shape the paper's Section 6.2 evaluates: users ask "how long
// would a 32-processor job submitted to normal wait, at worst?".
//
// Service is safe for concurrent use and designed so readers never wait:
// streams live in a fixed array of lock-striped shards (hashed by stream
// key) that only the write and admin paths touch, while every read API —
// Forecast, Profile, Observations, StreamStats, Stats — runs lock-free
// against two RCU-published immutable structures:
//
//   - a partitioned copy-on-write stream index (see index.go): one or two
//     atomic loads resolve a (queue, processor-category) shape to its
//     stream with no locking and no key construction. Creating a stream
//     republishes only the partition it hashes into, O(partition load),
//     so stream-creation churn scales linearly; and
//   - a per-stream forecastSnapshot (bound, monitoring counters,
//     generation number) published under the stream's write lock.
//
// Snapshot publication is amortized, not per-write: an applied
// observation, batch chunk, or replay group bumps the stream's applied
// generation and sets a dirty flag; the snapshot itself is republished on
// the next read that finds the flag set (publish-on-demand, via a
// non-blocking TryLock) or eagerly once publishBacklog events accumulate
// unread. Readers therefore never block, can never observe a half-applied
// batch chunk — publications only happen at chunk boundaries under the
// stream lock — and the write path pays one snapshot allocation per
// read-visible state instead of one per refit. If a writer holds the
// stream lock, readers serve the previous snapshot: bounded staleness,
// never a stale *forecast* for longer than one lock hold + publishBacklog
// applied events.
//
// Each stream also self-monitors the paper's correctness metric online:
// every observation whose wait can be compared against the bound quoted at
// its arrival is a resolved prediction, and the rolling fraction of hits
// (wait <= quoted bound) is tracked against the target confidence — the
// live analogue of the "correct %" columns of Tables 3–7.
//
// At registry scale (the ROADMAP's millions-of-streams regime), idle
// streams can be evicted to a compact cold form and rehydrated on their
// next write — see evict.go.
type Service struct {
	opts       []Option
	byProcs    atomic.Bool
	quantile   float64
	confidence float64

	shards   [serviceShards]serviceShard
	nStreams atomic.Int64
	nextSeed atomic.Int64

	// index is the partitioned copy-on-write read path (index.go): an
	// immutable root of immutable partitions, republished per-partition on
	// stream creation and wholesale when replaceStreams installs a
	// restored set or growth resizes the partition array. The hot read
	// path is two atomic loads plus one or two map probes — no locks, no
	// key concatenation.
	index   atomic.Pointer[streamIndex]
	indexMu sync.Mutex

	// emptyProfile is the quantile profile of a zero-observation stream,
	// computed once and shared by every newly created stream's first
	// snapshot — all empty streams answer Profile identically, so there is
	// no reason to allocate a fresh slice per creation.
	emptyProfile atomic.Pointer[[]Bound]

	// Lifecycle (evict.go). clock is the coarse activity clock streams
	// stamp on writes: eviction passes advance it, so its resolution is
	// the eviction interval — cheap enough for every observe, precise
	// enough for TTLs that are minutes. nCold counts evicted streams;
	// evictions/rehydrations/indexRebuilds feed /metrics.
	clock         atomic.Int64
	nCold         atomic.Int64
	evictions     obs.Counter
	rehydrations  obs.Counter
	indexRebuilds obs.Counter

	// Durability. wal is attached once by RecoverWAL before traffic and
	// never changes; nil means observations are held in memory between
	// snapshots, the pre-WAL behavior. readonly is 1 while log appends are
	// failing (observes are refused rather than silently losing data) and
	// self-heals on the next successful append. The counters feed the
	// server's /metrics.
	wal               *wal.WAL
	readonly          obs.Gauge
	walAppends        obs.Counter
	walAppendErrors   obs.Counter
	walReplayed       obs.Counter
	walReplayDropped  obs.Counter // replay truncation events (torn/corrupt tails)
	walReplayDroppedB obs.Counter // bytes discarded by those truncations
	walCompactErrors  obs.Counter

	// Replication (replica.go). follower gates the write path: a follower
	// refuses Observe/ObserveBatch with ErrNotLeader and takes state only
	// from its replication session. replApplied is the follower's applied
	// prefix — the highest replicated sequence folded in. commitHook, when
	// set on a leader, runs between a batch's durable append and its
	// apply (synchronous replication: the ack waits for a follower).
	follower    atomic.Bool
	replApplied atomic.Uint64
	commitHook  func(lastSeq uint64) error

	// Chunked catch-up (replicastream.go). snapChunkStreams is the
	// per-chunk stream count for outgoing snapshot streams (0 = default);
	// pendingSnap accumulates an incoming chunked install until commit.
	snapChunkStreams atomic.Int64
	pendingSnapMu    sync.Mutex
	pendingSnap      *pendingReplicaSnapshot
}

// ErrInvalidWait rejects observations whose wait is NaN, infinite, or
// negative — none of which can be a queue delay, and any of which would
// poison the order statistics every future bound is computed from.
var ErrInvalidWait = errors.New("qbets: wait_seconds must be finite and non-negative")

// ErrReadOnly reports that the service is refusing observations because
// write-ahead-log appends are failing: accepting an observation it cannot
// make durable would silently violate the crash-safety contract. Forecasts
// and status reads keep working; the mode clears itself as soon as an
// append succeeds again.
var ErrReadOnly = errors.New("qbets: read-only: observation log appends are failing")

const serviceShards = 64

// cacheSlotWhole is the stream-index slot for whole-queue streams (byProcs
// off); slots below it are indexed by processor category.
const cacheSlotWhole = int(trace.NumProcBuckets)

// publishBacklog bounds how many applied-but-unpublished events a stream
// may accumulate before the write path publishes eagerly. Reads publish on
// demand, so this only matters for write-heavy streams nobody reads
// between scrapes: their snapshot (and therefore /metrics and the
// state-save fallback for cold streams) lags at most this many events.
const publishBacklog = 64

// forecastSnapshot is the immutable answer the read plane serves: the
// stream's current bound and self-monitoring state, published (a fresh
// allocation, never mutated — except the profile cache below) under the
// stream's write lock. gen starts at 1 on stream creation and advances by
// exactly one per applied Observe, ObserveBatch chunk, or replay group —
// whether or not a snapshot was published for the intermediate states —
// so a reader can order the states it sees and tests can assert that
// every visible state lies on a chunk boundary.
type forecastSnapshot struct {
	gen              uint64
	boundSeconds     float64
	boundOK          bool
	observations     int
	minObservations  int
	rollingHitRate   float64
	rollingResolved  int
	lifetimeHits     uint64
	lifetimeResolved uint64
	trims            int
	lastTrimUnix     int64

	// profile is the Table 8 quantile profile for this snapshot's state,
	// computed lazily on the first Profile call that lands on the snapshot
	// (under the stream lock) and cached here — publish-on-read twice
	// over: most snapshots are never asked for a profile, so publication
	// does not pay for one. The pointed-to slice is immutable and shared
	// with every Profile caller.
	profile atomic.Pointer[[]Bound]
}

// hitRateWindow is the number of resolved predictions the rolling
// correctness estimate covers. Around 500 the binomial noise on the rate
// (±2σ ≈ 0.02 at C = 0.95) is small against the 0.05 slack the paper's
// tables examine, while the window still reacts to regime changes within
// a few hundred jobs.
const hitRateWindow = 500

type serviceShard struct {
	mu sync.RWMutex
	m  map[string]*stream
}

// stream couples one Forecaster with its own lock and monitoring state.
// The lock serializes writers (observe, batch apply, replay, serialize,
// evict); readers go through snap, the RCU-published forecastSnapshot,
// and only ever *try* the lock (publish-on-demand) — they never wait on
// it.
type stream struct {
	key  string
	mu   sync.RWMutex
	fc   *Forecaster
	hit  *obs.RollingRate
	snap atomic.Pointer[forecastSnapshot]

	// dirty is set (under mu) when applied state is newer than the
	// published snapshot and cleared by publishLocked. Readers poll it to
	// decide whether a publish-on-demand attempt is worthwhile.
	dirty atomic.Bool

	// lastProfile is the most recently computed quantile profile, kept as
	// a fallback so Profile can answer without blocking even when the
	// current snapshot's profile has not been computed and the stream
	// lock is held by a writer. Stale by at most the same bound as the
	// snapshot itself.
	lastProfile atomic.Pointer[[]Bound]

	// lastTouch is the service's coarse clock value at the stream's last
	// write (creation, observe, replay); eviction passes compare it
	// against their TTL cutoff. Reads do not touch it — serving a cold
	// stream's snapshot is free, so read traffic alone never keeps a
	// stream hydrated.
	lastTouch atomic.Int64

	// evicted mirrors fc == nil for lock-free observers (eviction passes,
	// metrics); the authoritative state is fc, guarded by mu.
	evicted atomic.Bool

	// appliedGen (guarded by mu) counts applied events — observations,
	// batch chunks, replay groups — since stream creation or adoption.
	// The published snapshot's gen is appliedGen+1 at publication time.
	appliedGen uint64

	// cold (guarded by mu) is the serialized forecaster while evicted
	// (fc == nil): exactly what MarshalBinary would have produced, ready
	// to be written to a state snapshot or rehydrated on the next write.
	cold []byte

	// Trim tracking (guarded by mu): trimsSeen mirrors fc.ChangePoints()
	// after each observe so the wall-clock time of the latest trim can be
	// recorded as it happens.
	trimsSeen    int
	lastTrimUnix int64

	// lastSeq (guarded by mu) is the WAL sequence number of the newest
	// observation folded into fc — 0 before any logged observation. It is
	// serialized with the stream, which is what makes snapshot + log-tail
	// recovery exact: replay skips records at or below it, so nothing is
	// double-applied and nothing is lost.
	lastSeq uint64
}

// StreamStatus is a point-in-time snapshot of one stream's state and
// self-monitoring metrics.
type StreamStatus struct {
	// Stream is the registry key ("queue" or "queue/bucket").
	Stream string
	// Observations and MinObservations report history depth vs. the
	// minimum needed for a bound.
	Observations    int
	MinObservations int
	// BoundSeconds is the current bound (valid when BoundOK).
	BoundSeconds float64
	BoundOK      bool
	// RollingHitRate is the fraction of the last RollingResolved resolved
	// predictions whose wait fell within the quoted bound; the paper's
	// correctness metric, computed online. Compare against
	// TargetConfidence: a healthy stream sits at or above it.
	RollingHitRate  float64
	RollingResolved int
	// LifetimeHits / LifetimeResolved are totals since stream creation.
	LifetimeHits     uint64
	LifetimeResolved uint64
	// Trims counts change-point events; LastTrimUnix is the wall-clock
	// second of the most recent one (0 if none).
	Trims        int
	LastTrimUnix int64
	// TargetQuantile / TargetConfidence echo the service configuration.
	TargetQuantile   float64
	TargetConfidence float64
	// Generation numbers the published forecast snapshot this status was
	// read from: 1 at stream creation, +1 per applied observation, batch
	// chunk, or replay group. It is monotone for the life of a stream (a
	// wholesale restore starts new streams over at 1) and is exported as
	// the qbets_forecast_generation metric.
	Generation uint64
}

// NewService returns an empty Service. splitByProcs selects whether each
// queue is modeled as one stream or as four per-category streams.
func NewService(splitByProcs bool, opts ...Option) *Service {
	c := config{quantile: 0.95, confidence: 0.95}
	for _, o := range opts {
		o(&c)
	}
	s := &Service{opts: opts, quantile: c.quantile, confidence: c.confidence}
	s.byProcs.Store(splitByProcs)
	s.index.Store(newStreamIndex(indexInitialPartitions))
	s.clock.Store(time.Now().UnixNano())
	for i := range s.shards {
		s.shards[i].m = make(map[string]*stream)
	}
	return s
}

// Quantile returns the resolved quantile streams are configured with.
func (s *Service) Quantile() float64 { return s.quantile }

// Confidence returns the resolved confidence level streams are configured
// with.
func (s *Service) Confidence() float64 { return s.confidence }

func (s *Service) key(queue string, procs int) string {
	if !s.byProcs.Load() {
		return queue
	}
	return queue + "/" + CategoryOf(procs).Label()
}

// shardOf hashes a stream key to its shard (FNV-1a, shared with the index
// partitioning in index.go).
func shardOf(key string) uint32 {
	return keyHash(key) % serviceShards
}

// lookup returns the stream for a key without creating it: two atomic
// loads of the published index, no locking. A stream whose creation has
// not yet republished its partition is momentarily invisible here, which
// reads the same as arriving just before the creation — the shard maps
// stay the authority for the write path.
func (s *Service) lookup(key string) *stream {
	return s.index.Load().lookupKey(key)
}

// getOrCreate returns the stream for a key, creating it on first use. The
// new stream's index partition is republished after the shard insert
// (outside the shard lock), so by the time this returns the new stream is
// visible to lock-free readers.
func (s *Service) getOrCreate(key string) *stream {
	if st := s.lookup(key); st != nil {
		return st
	}
	sh := &s.shards[shardOf(key)]
	sh.mu.Lock()
	st := sh.m[key]
	created := st == nil
	if created {
		st = s.newStream(key)
		sh.m[key] = st
		s.nStreams.Add(1)
	}
	sh.mu.Unlock()
	if created {
		s.indexInsert(key, st)
	}
	return st
}

// splitKey inverts keyForSlot under a routing mode: whole-queue keys map
// to the queue itself, per-category keys split at the trailing
// "/<bucket label>".
func splitKey(key string, byProcs bool) (queue string, slot int, ok bool) {
	if !byProcs {
		return key, cacheSlotWhole, true
	}
	for b := 0; b < int(trace.NumProcBuckets); b++ {
		label := ProcCategory(b).Label()
		if len(key) > len(label)+1 && key[len(key)-len(label)-1] == '/' && key[len(key)-len(label):] == label {
			return key[:len(key)-len(label)-1], b, true
		}
	}
	return "", 0, false
}

// slotOf maps a processor count to its streamCache slot under the current
// routing mode. Batch callers capture the slots for a whole chunk before
// resolving streams, so one chunk can never see two routing modes.
func (s *Service) slotOf(procs int) int {
	if !s.byProcs.Load() {
		return cacheSlotWhole
	}
	return int(CategoryOf(procs))
}

// keyForSlot builds the registry key for a queue and cache slot; it agrees
// with key() by construction.
func (s *Service) keyForSlot(queue string, slot int) string {
	if slot == cacheSlotWhole {
		return queue
	}
	return queue + "/" + ProcCategory(slot).Label()
}

// streamForSlot resolves (queue, slot) to its stream through the published
// index — the hot ingest path, two atomic loads and two map reads with no
// key construction — falling back to key construction + getOrCreate on a
// miss. There is no insert-back step: getOrCreate republishes the
// partition, so the next call hits.
func (s *Service) streamForSlot(queue string, slot int) *stream {
	if arr := s.index.Load().lookupQueue(queue); arr != nil {
		if st := arr[slot]; st != nil {
			return st
		}
	}
	return s.getOrCreate(s.keyForSlot(queue, slot))
}

// readStream is the forecast-plane lookup: (queue, procs) to stream with
// zero locks and zero allocations, never creating anything. nil means the
// shape is unknown.
func (s *Service) readStream(queue string, procs int) *stream {
	arr := s.index.Load().lookupQueue(queue)
	if arr == nil {
		return nil
	}
	return arr[s.slotOf(procs)]
}

// streamFor is the hot-path form of getOrCreate(key(queue, procs)).
func (s *Service) streamFor(queue string, procs int) *stream {
	return s.streamForSlot(queue, s.slotOf(procs))
}

// newStream builds a settled stream: the forecaster's lazily-computed
// bound is materialized up front so read paths stay mutation-free, and the
// first forecast snapshot (generation 1) is published before the stream
// becomes reachable. The empty-stream profile is shared service-wide —
// every zero-observation stream answers Profile identically.
func (s *Service) newStream(key string) *stream {
	seed := s.nextSeed.Add(1) - 1
	opts := append([]Option{WithSeed(seed)}, s.opts...)
	fc := New(opts...)
	fc.Forecast()
	st := &stream{key: key, fc: fc, hit: obs.NewRollingRate(hitRateWindow)}
	st.lastTouch.Store(s.clock.Load())
	st.publishLocked()
	p := s.sharedEmptyProfile()
	st.snap.Load().profile.Store(p)
	st.lastProfile.Store(p)
	return st
}

// sharedEmptyProfile computes (once) the profile every zero-observation
// stream shares: no entry can be OK without history, so the result does
// not depend on the per-stream seed.
func (s *Service) sharedEmptyProfile() *[]Bound {
	if p := s.emptyProfile.Load(); p != nil {
		return p
	}
	fc := New(s.opts...)
	p := fc.Profile()
	s.emptyProfile.CompareAndSwap(nil, &p)
	return s.emptyProfile.Load()
}

// adoptStream wraps a restored forecaster (state.go's restore path).
// lastSeq is the WAL sequence number the snapshot covers for this stream.
// The restored state's forecast snapshot is installed here, before
// replaceStreams publishes the stream — a reader that resolves the new
// stream can never see a stale or missing snapshot. The profile is
// computed on demand (first Profile call), not here: restoring a million
// streams must not pay for a million profiles nobody asked for.
func (s *Service) adoptStream(key string, fc *Forecaster, lastSeq uint64) *stream {
	fc.Forecast() // settle the lazy refit before concurrent reads start
	st := &stream{key: key, fc: fc, hit: obs.NewRollingRate(hitRateWindow), trimsSeen: fc.ChangePoints(), lastSeq: lastSeq}
	st.lastTouch.Store(s.clock.Load())
	st.publishLocked()
	return st
}

// publishLocked derives a fresh immutable forecastSnapshot from the
// forecaster and monitoring state and RCU-publishes it, clearing the dirty
// flag. Callers hold the stream's write lock (or, on the creation paths,
// sole ownership) and the forecaster must be settled — every write path
// refits eagerly before marking dirty. The snapshot's generation is
// appliedGen+1, so however many publications were skipped in between,
// every *published* state carries the generation of the apply that
// produced it — which is what keeps the chunk-coherence oracle exact
// under lazy publication.
func (st *stream) publishLocked() {
	bound, ok := st.fc.Forecast()
	rate, n := st.hit.Rate()
	hits, total := st.hit.Lifetime()
	st.snap.Store(&forecastSnapshot{
		gen:              st.appliedGen + 1,
		boundSeconds:     bound,
		boundOK:          ok,
		observations:     st.fc.Observations(),
		minObservations:  st.fc.MinObservations(),
		rollingHitRate:   rate,
		rollingResolved:  n,
		lifetimeHits:     hits,
		lifetimeResolved: total,
		trims:            st.fc.ChangePoints(),
		lastTrimUnix:     st.lastTrimUnix,
	})
	st.dirty.Store(false)
}

// markDirtyLocked records one applied event: the generation advances, the
// stream is stamped on the activity clock, and the dirty flag invites the
// next reader to publish. Publication happens here only when the backlog
// of unpublished events reaches publishBacklog, so an unread, write-hot
// stream still surfaces a recent state to /metrics scrapes and cold-path
// state saves.
func (st *stream) markDirtyLocked(s *Service) {
	st.appliedGen++
	if !st.dirty.Load() {
		st.dirty.Store(true)
	}
	if c := s.clock.Load(); st.lastTouch.Load() != c {
		st.lastTouch.Store(c)
	}
	if st.appliedGen+1-st.snap.Load().gen >= publishBacklog {
		st.publishLocked()
	}
}

// loadSnap returns the stream's published snapshot, first publishing any
// applied-but-unpublished state if the stream lock is free
// (publish-on-demand). If a writer holds the lock the previous snapshot is
// served — the read never blocks, and the staleness is bounded by one lock
// hold plus publishBacklog events.
func (st *stream) loadSnap() *forecastSnapshot {
	if st.dirty.Load() && st.mu.TryLock() {
		if st.dirty.Load() && st.fc != nil {
			st.publishLocked()
		}
		st.mu.Unlock()
	}
	return st.snap.Load()
}

// observe records a wait: the observation is logged and applied under the
// stream's write lock, then — outside every lock — the commit hook gates
// the ack under synchronous replication. A hook failure refuses the
// observe with ErrReadOnly even though the record is durable and applied
// locally: the client was never acked, so retry-after-heal at worst
// re-records a real wait, while acking un-replicated data could lose it
// in a failover. The hook runs lock-free deliberately: a commit wait can
// ride out a concurrent catch-up snapshot, which read-locks every stream.
func (st *stream) observe(s *Service, waitSeconds float64) error {
	seq, err := st.observeApply(s, waitSeconds)
	if err != nil {
		return err
	}
	if s.commitHook != nil && s.wal != nil {
		if herr := s.commitHook(seq); herr != nil {
			return fmt.Errorf("%w: replication: %v", ErrReadOnly, herr)
		}
	}
	return nil
}

// observeApply appends and applies one wait under the stream's write
// lock: the observation goes to the service's WAL first (if one is
// attached), then folds into the forecaster, scoring the bound the
// arriving job would have been quoted and keeping the bound fresh.
// Holding the write lock across append-then-apply is what keeps
// (forecaster state, lastSeq) consistent — a snapshot taken concurrently
// sees either both effects or neither. An evicted stream rehydrates
// here, before the append.
func (st *stream) observeApply(s *Service, waitSeconds float64) (uint64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.fc == nil {
		if err := st.rehydrateLocked(s); err != nil {
			return 0, err
		}
	}
	var seq uint64
	if s.wal != nil {
		var err error
		// Records carry the WAL's coarse clock (exact to the last sync):
		// the timestamp is forensic — recovery replays by sequence, not
		// time — and a per-observe time syscall is the hot path's single
		// largest avoidable cost.
		seq, err = s.wal.Append(st.key, waitSeconds, s.wal.CoarseUnixNanos())
		if err != nil {
			s.walAppendErrors.Inc()
			s.readonly.Set(1)
			return 0, fmt.Errorf("%w: %v", ErrReadOnly, err)
		}
		s.walAppends.Inc()
		// Clear the read-only latch only when it is actually set: an
		// unconditional store would bounce the gauge's cacheline between
		// every observing core.
		if s.readonly.Value() != 0 {
			s.readonly.Set(0)
		}
	}
	st.applyLocked(s, waitSeconds, seq, true)
	return seq, nil
}

// applyLocked folds a wait into the forecaster. scoreHit is false on the
// replay path: recovered observations update predictor state exactly as
// they did in the crashed process, but the rolling correctness monitor
// only scores quotes this process actually made (the same rule snapshot
// restore follows).
func (st *stream) applyLocked(s *Service, waitSeconds float64, seq uint64, scoreHit bool) {
	if scoreHit {
		if bound, ok := st.fc.Forecast(); ok {
			st.hit.Record(waitSeconds <= bound)
		}
	}
	st.fc.Observe(waitSeconds)
	st.fc.Forecast() // eager refit: read paths must never find a stale bound
	if seq > st.lastSeq {
		st.lastSeq = seq
	}
	if tr := st.fc.ChangePoints(); tr != st.trimsSeen {
		st.trimsSeen = tr
		st.lastTrimUnix = time.Now().Unix()
	}
	st.markDirtyLocked(s)
}

// applyGroupLocked folds one batch group into the forecaster under the
// single write-lock acquisition ObserveBatch already holds. Each wait is
// still scored against the bound quoted at its arrival — the correctness
// monitor and the predictor's own change-point scoring are per-record by
// definition, so final state depends only on the wait sequence, not on how
// it was batched — but the trailing settle, lastSeq advance, and trim
// bookkeeping run once per group instead of once per record. lastSeq is
// the sequence number of the group's newest record (0 without a WAL).
func (st *stream) applyGroupLocked(s *Service, chunk []ObserveRecord, idxs []int32, lastSeq uint64) {
	for _, idx := range idxs {
		w := chunk[idx].WaitSeconds
		if bound, ok := st.fc.Forecast(); ok {
			st.hit.Record(w <= bound)
		}
		st.fc.Observe(w)
	}
	st.fc.Forecast() // eager refit: read paths must never find a stale bound
	if lastSeq > st.lastSeq {
		st.lastSeq = lastSeq
	}
	if tr := st.fc.ChangePoints(); tr != st.trimsSeen {
		st.trimsSeen = tr
		st.lastTrimUnix = time.Now().Unix()
	}
	// One generation per chunk: readers see whole chunks or nothing.
	st.markDirtyLocked(s)
}

// replayGroupLocked is applyGroupLocked's recovery-path sibling: recovered
// records at or below the stream's snapshot anchor are skipped, quotes are
// not scored (this process never made them), and the forecaster settles
// once per group — which is what makes batched replay measurably faster
// than the record-at-a-time path on a long log tail.
func (st *stream) replayGroupLocked(s *Service, waits []float64, seqs []uint64) {
	applied := false
	for i, seq := range seqs {
		if seq <= st.lastSeq {
			continue
		}
		st.fc.Observe(waits[i])
		st.lastSeq = seq
		applied = true
	}
	if !applied {
		return
	}
	st.fc.Forecast()
	if tr := st.fc.ChangePoints(); tr != st.trimsSeen {
		st.trimsSeen = tr
		st.lastTrimUnix = time.Now().Unix()
	}
	st.markDirtyLocked(s)
}

// BatchError reports a batch that was refused or cut short at a specific
// record: records before Index were applied (and are durable under the
// WAL's sync policy), records at and after it were not. Err carries the
// cause — errors.Is(err, ErrReadOnly) means the observation log stopped
// taking appends mid-batch (or, under synchronous replication, a chunk's
// commit wait failed after it was applied — Index then equals the applied
// count) and the client should retry the remainder after the Retry-After
// interval; ErrInvalidWait means the batch was rejected up front without
// applying anything; ErrNotLeader means this node is a replication
// follower and the whole batch must go to the leader.
type BatchError struct {
	Index int
	Err   error
}

func (e *BatchError) Error() string { return fmt.Sprintf("record %d: %v", e.Index, e.Err) }
func (e *BatchError) Unwrap() error { return e.Err }

// observeBatchChunk is how many records one WAL append — and, under
// sync=always, one fsync — covers. It bounds how much work a single
// multi-stream lock hold can pin and is the granularity of partial
// failure: a batch dies on a chunk boundary, so ObserveBatch's applied
// count is exact.
const observeBatchChunk = 256

// batchGroup is one (queue, category) run within a chunk: the indices of
// the chunk's records that route to one stream.
type batchGroup struct {
	queue string
	slot  int
	st    *stream
	idxs  []int32
}

// batchScratch is the pooled working state of one ObserveBatch call; the
// ingest hot path reuses it so batch grouping allocates nothing in steady
// state.
type batchScratch struct {
	groups  []batchGroup
	entries []wal.Entry
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// release returns the scratch to the pool with anything that could pin
// request memory cleared; group index slices keep their capacity.
func (sc *batchScratch) release() {
	for i := range sc.groups {
		sc.groups[i].queue, sc.groups[i].st = "", nil
	}
	clear(sc.entries)
	batchScratchPool.Put(sc)
}

// ObserveBatch records a batch of completed waits, amortizing the write
// path: records are grouped by stream, each chunk is appended to the WAL
// as one batch (one fsync under sync=always, against one per record for
// the loop-over-Observe equivalent), and each stream's group is applied
// under a single lock acquisition. Final predictor state is identical to
// calling Observe once per record in order.
//
// On success it returns (len(records), nil). A record that cannot be a
// queue delay rejects the whole batch up front — (0, *BatchError wrapping
// ErrInvalidWait) — applying nothing. If the observation log stops taking
// appends partway through, every record before the returned count was
// applied and durable, no later record was, and the *BatchError (wrapping
// ErrReadOnly) carries the index of the first unapplied record so the
// client can retry exactly the remainder.
func (s *Service) ObserveBatch(records []ObserveRecord) (applied int, err error) {
	for i := range records {
		w := records[i].WaitSeconds
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return 0, &BatchError{Index: i, Err: ErrInvalidWait}
		}
	}
	if s.follower.Load() {
		return 0, &BatchError{Index: 0, Err: ErrNotLeader}
	}
	if len(records) == 0 {
		return 0, nil
	}
	sc := batchScratchPool.Get().(*batchScratch)
	defer sc.release()
	for base := 0; base < len(records); base += observeBatchChunk {
		end := min(base+observeBatchChunk, len(records))
		last, cerr := s.observeChunk(records[base:end], sc)
		if cerr != nil {
			return base, &BatchError{Index: base, Err: cerr}
		}
		applied = end
		// Synchronous replication gates the ack per chunk, outside the
		// chunk's stream locks (see stream.observe): the chunk is applied
		// and durable locally, so the reported count stays truthful, but
		// the client is not acked past a failed commit wait.
		if s.commitHook != nil && last > 0 {
			if herr := s.commitHook(last); herr != nil {
				return applied, &BatchError{Index: applied, Err: fmt.Errorf("%w: replication: %v", ErrReadOnly, herr)}
			}
		}
	}
	return applied, nil
}

// observeChunk groups, logs, and applies one chunk, returning the chunk's
// last log sequence (0 when no WAL is attached). The chunk is atomic:
// either every record is appended (one AppendBatch) and applied, or none
// is. All affected stream write locks are held, in key order, across
// append-then-apply — the same invariant the single-record path keeps, so
// a concurrent snapshot's (state, lastSeq) view stays consistent and
// compaction can never delete a segment whose records some stream has not
// yet folded in. Evicted streams rehydrate after the locks are taken and
// before anything is appended, so a rehydration failure applies nothing.
func (s *Service) observeChunk(chunk []ObserveRecord, sc *batchScratch) (uint64, error) {
	byProcs := s.byProcs.Load()
	groups := sc.groups[:0]
	for i := range chunk {
		slot := cacheSlotWhole
		if byProcs {
			slot = int(CategoryOf(chunk[i].Procs))
		}
		gi := 0
		for ; gi < len(groups); gi++ {
			if groups[gi].slot == slot && groups[gi].queue == chunk[i].Queue {
				groups[gi].idxs = append(groups[gi].idxs, int32(i))
				break
			}
		}
		if gi == len(groups) {
			if len(groups) < cap(groups) {
				groups = groups[:gi+1]
				g := &groups[gi]
				g.queue, g.slot, g.st, g.idxs = chunk[i].Queue, slot, nil, append(g.idxs[:0], int32(i))
			} else {
				groups = append(groups, batchGroup{queue: chunk[i].Queue, slot: slot, idxs: []int32{int32(i)}})
			}
		}
	}
	sc.groups = groups
	for gi := range groups {
		groups[gi].st = s.streamForSlot(groups[gi].queue, groups[gi].slot)
	}
	// Distinct (queue, slot) pairs resolve to distinct streams (the slot
	// set is fixed for the chunk), so sorting by key gives a strict global
	// lock order — concurrent batches cannot deadlock.
	slices.SortFunc(groups, func(a, b batchGroup) int { return strings.Compare(a.st.key, b.st.key) })
	for gi := range groups {
		groups[gi].st.mu.Lock()
	}
	defer func() {
		for gi := range groups {
			groups[gi].st.mu.Unlock()
		}
	}()
	for gi := range groups {
		if groups[gi].st.fc == nil {
			if err := groups[gi].st.rehydrateLocked(s); err != nil {
				return 0, err
			}
		}
	}
	if s.wal == nil {
		for gi := range groups {
			groups[gi].st.applyGroupLocked(s, chunk, groups[gi].idxs, 0)
		}
		return 0, nil
	}
	entries := sc.entries[:0]
	if cap(entries) < len(chunk) {
		entries = make([]wal.Entry, 0, observeBatchChunk)
	}
	entries = entries[:len(chunk)]
	now := s.wal.CoarseUnixNanos()
	for gi := range groups {
		g := &groups[gi]
		for _, idx := range g.idxs {
			entries[idx] = wal.Entry{Key: g.st.key, Wait: chunk[idx].WaitSeconds, UnixNanos: now}
		}
	}
	sc.entries = entries
	firstSeq, werr := s.wal.AppendBatch(entries)
	if werr != nil {
		s.walAppendErrors.Inc()
		s.readonly.Set(1)
		return 0, fmt.Errorf("%w: %v", ErrReadOnly, werr)
	}
	s.walAppends.Add(uint64(len(chunk)))
	if s.readonly.Value() != 0 {
		s.readonly.Set(0)
	}
	for gi := range groups {
		g := &groups[gi]
		g.st.applyGroupLocked(s, chunk, g.idxs, firstSeq+uint64(g.idxs[len(g.idxs)-1]))
	}
	return firstSeq + uint64(len(chunk)) - 1, nil
}

// status renders the stream's published snapshot as a StreamStatus,
// publishing pending state on demand — no blocking, no allocations beyond
// a possible publish.
func (st *stream) status(q, c float64) StreamStatus {
	snap := st.loadSnap()
	return StreamStatus{
		Stream:           st.key,
		Observations:     snap.observations,
		MinObservations:  snap.minObservations,
		BoundSeconds:     snap.boundSeconds,
		BoundOK:          snap.boundOK,
		RollingHitRate:   snap.rollingHitRate,
		RollingResolved:  snap.rollingResolved,
		LifetimeHits:     snap.lifetimeHits,
		LifetimeResolved: snap.lifetimeResolved,
		Trims:            snap.trims,
		LastTrimUnix:     snap.lastTrimUnix,
		TargetQuantile:   q,
		TargetConfidence: c,
		Generation:       snap.gen,
	}
}

// Observe records a completed wait for a queue and processor count. It
// returns ErrInvalidWait for waits that cannot be queue delays (NaN, Inf,
// negative) and ErrReadOnly (wrapped, with the cause) when a write-ahead
// log is attached and the append failed — in that case the observation was
// NOT recorded, by design: refusing is recoverable, silent loss is not.
func (s *Service) Observe(queue string, procs int, waitSeconds float64) error {
	if math.IsNaN(waitSeconds) || math.IsInf(waitSeconds, 0) || waitSeconds < 0 {
		return ErrInvalidWait
	}
	if s.follower.Load() {
		return ErrNotLeader
	}
	return s.streamFor(queue, procs).observe(s, waitSeconds)
}

// Forecast returns the bound a job with the given shape would be quoted.
// ok is false when the stream is unknown or its history is too short;
// asking about a never-observed shape does not create a stream.
//
// Forecast never blocks and allocates nothing in steady state: two atomic
// index loads, one snapshot load — plus a non-blocking publish if pending
// writes have not been surfaced yet. It cannot be delayed by concurrent
// ingest, refits, or snapshot saves on the same stream.
func (s *Service) Forecast(queue string, procs int) (seconds float64, ok bool) {
	st := s.readStream(queue, procs)
	if st == nil {
		return 0, false
	}
	snap := st.loadSnap()
	return snap.boundSeconds, snap.boundOK
}

// Profile returns the Table 8 quantile profile for a job shape, or nil if
// the stream is unknown.
//
// The returned slice is the published immutable snapshot's profile, shared
// with every concurrent caller — treat it as read-only. Mutating it is a
// data race. Profiles are computed on demand: the first call after a write
// computes and caches the profile for the current snapshot (under the
// stream lock if it is free; otherwise the previous profile is served,
// same staleness bound as Forecast). This is what makes steady-state
// Profile allocation-free; copy the slice if you need to edit it.
func (s *Service) Profile(queue string, procs int) []Bound {
	st := s.readStream(queue, procs)
	if st == nil {
		return nil
	}
	return st.profile(s)
}

// profile serves the stream's quantile profile from the published
// snapshot, computing it on demand. Order of preference: the current
// snapshot's cached profile; compute-and-cache under a non-blocking
// TryLock; the last profile ever computed (bounded staleness, same rule
// as loadSnap); and — only for a cold-adopted stream that has never
// computed one — a blocking compute, which may rehydrate the forecaster.
func (st *stream) profile(s *Service) []Bound {
	snap := st.loadSnap()
	if p := snap.profile.Load(); p != nil {
		return *p
	}
	if st.mu.TryLock() {
		p := st.fillProfileLocked(s)
		st.mu.Unlock()
		if p != nil {
			return *p
		}
	}
	if p := st.lastProfile.Load(); p != nil {
		return *p
	}
	st.mu.Lock()
	p := st.fillProfileLocked(s)
	st.mu.Unlock()
	if p != nil {
		return *p
	}
	return nil
}

// fillProfileLocked computes the profile for the stream's current state
// and caches it on the published snapshot (and the stream's lastProfile
// fallback). Returns nil only if an evicted forecaster cannot be
// rehydrated. Caller holds the stream's write lock.
func (st *stream) fillProfileLocked(s *Service) *[]Bound {
	if st.fc == nil {
		if err := st.rehydrateLocked(s); err != nil {
			return nil
		}
	}
	if st.dirty.Load() {
		st.publishLocked()
	}
	snap := st.snap.Load()
	if p := snap.profile.Load(); p != nil {
		return p
	}
	p := st.fc.Profile()
	snap.profile.Store(&p)
	st.lastProfile.Store(&p)
	return &p
}

// Observations returns the history length behind a job shape's stream
// (0 for unknown streams).
func (s *Service) Observations(queue string, procs int) int {
	st := s.readStream(queue, procs)
	if st == nil {
		return 0
	}
	return st.loadSnap().observations
}

// Queues lists the streams the service currently tracks, sorted by stream
// key (a k-way merge of the index partitions' sorted key lists).
func (s *Service) Queues() []string {
	idx := s.index.Load()
	out := make([]string, 0, idx.count())
	idx.forEachOrdered(func(k string, _ *stream) bool {
		out = append(out, k)
		return true
	})
	return out
}

// NumStreams returns how many streams the service tracks.
func (s *Service) NumStreams() int { return int(s.nStreams.Load()) }

// LiveStreams returns how many streams currently hold a hydrated
// forecaster in memory (NumStreams minus the evicted ones).
func (s *Service) LiveStreams() int { return int(s.nStreams.Load() - s.nCold.Load()) }

// StreamStats returns the status snapshot for one job shape. ok is false
// for unknown streams. Like Forecast, it never blocks and allocates
// nothing in steady state.
func (s *Service) StreamStats(queue string, procs int) (StreamStatus, bool) {
	st := s.readStream(queue, procs)
	if st == nil {
		return StreamStatus{}, false
	}
	return st.status(s.quantile, s.confidence), true
}

// Stats returns status snapshots for every stream, sorted by stream key.
// It walks the published index, so it takes no locks and cannot stall or
// be stalled by ingest.
func (s *Service) Stats() []StreamStatus {
	return s.StatsLimit(0)
}

// StatsLimit returns status snapshots for the first limit streams in key
// order (all of them when limit <= 0). The ordered walk stops as soon as
// the limit is reached, so asking a million-stream registry for its first
// hundred streams costs a hundred statuses, not a million.
func (s *Service) StatsLimit(limit int) []StreamStatus {
	idx := s.index.Load()
	n := idx.count()
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]StreamStatus, 0, n)
	idx.forEachOrdered(func(_ string, st *stream) bool {
		out = append(out, st.status(s.quantile, s.confidence))
		return limit <= 0 || len(out) < limit
	})
	return out
}

// replaceStreams swaps in a freshly restored stream set (state.go). Shard
// locks are taken in index order, so concurrent replaceStreams calls
// cannot deadlock; readers mid-flight keep operating on streams from the
// old set, which matches wholesale-restore semantics.
func (s *Service) replaceStreams(streams map[string]*stream) {
	var n, cold int64
	var grouped [serviceShards]map[string]*stream
	for i := range grouped {
		grouped[i] = make(map[string]*stream)
	}
	for k, st := range streams {
		grouped[shardOf(k)][k] = st
		n++
		if st.evicted.Load() {
			cold++
		}
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.m = grouped[i]
		sh.mu.Unlock()
	}
	s.nStreams.Store(n)
	s.nCold.Store(cold)
	// Republish the index from the new shard maps. The rebuild always
	// reads current shard state, so it can never resurrect an old-set
	// stream; once this returns, every lock-free reader resolves streams
	// (and therefore forecast snapshots) from the restored set only.
	s.republishIndex()
}

// RecoverWAL replays w's surviving records on top of the service's current
// state — typically a freshly restored snapshot — and attaches w so every
// subsequent Observe is logged before it mutates a stream. Records a
// stream's snapshot already covers (sequence number at or below the
// stream's persisted lastSeq) are skipped, so the merge is exact: each
// observation lands exactly once whatever the crash timing. Torn or
// corrupt log tails are tolerated (truncated and counted, never fatal).
//
// RecoverWAL must be called once, before the service takes traffic.
//
// Replay goes through the batch-apply path: records are buffered, grouped
// by stream, and folded in one lock acquisition and one settle per group —
// within a stream the log's order is preserved exactly, and streams are
// independent, so recovered state matches record-at-a-time replay. A
// cold-adopted stream (sharded restore) rehydrates before its first group
// applies.
func (s *Service) RecoverWAL(w *wal.WAL) (wal.ReplayStats, error) {
	const replayFlushEvery = 1024
	type pendingGroup struct {
		st    *stream
		waits []float64
		seqs  []uint64
	}
	pending := make(map[*stream]*pendingGroup)
	buffered := 0
	var replayErr error
	flush := func() {
		for _, p := range pending {
			p.st.mu.Lock()
			if p.st.fc == nil {
				if err := p.st.rehydrateLocked(s); err != nil {
					if replayErr == nil {
						replayErr = err
					}
					p.st.mu.Unlock()
					continue
				}
			}
			p.st.replayGroupLocked(s, p.waits, p.seqs)
			p.st.mu.Unlock()
		}
		clear(pending)
		buffered = 0
	}
	stats, err := w.Replay(func(r wal.Record) {
		st := s.getOrCreate(r.Key)
		p := pending[st]
		if p == nil {
			p = &pendingGroup{st: st}
			pending[st] = p
		}
		p.waits = append(p.waits, r.Wait)
		p.seqs = append(p.seqs, r.Seq)
		if buffered++; buffered >= replayFlushEvery {
			flush()
		}
	})
	flush()
	if err != nil {
		return stats, err
	}
	if replayErr != nil {
		return stats, replayErr
	}
	s.wal = w
	s.walReplayed.Add(uint64(stats.Records))
	s.walReplayDropped.Add(uint64(stats.Truncations))
	s.walReplayDroppedB.Add(uint64(stats.DroppedBytes))
	return stats, nil
}

// ReadOnly reports whether the service is currently refusing observations
// because WAL appends are failing (see ErrReadOnly).
func (s *Service) ReadOnly() bool { return s.readonly.Value() != 0 }

// DurabilityStats is a snapshot of the service's durability counters.
type DurabilityStats struct {
	// WALAttached is true when observations are logged before being applied.
	WALAttached bool
	// ReadOnly mirrors Service.ReadOnly.
	ReadOnly bool
	// Appends / AppendErrors count WAL appends since process start.
	Appends, AppendErrors uint64
	// ReplayedRecords is how many log records startup recovery applied or
	// skipped as already-snapshotted; ReplayTruncations / ReplayDroppedBytes
	// describe the torn or corrupt tails recovery discarded.
	ReplayedRecords, ReplayTruncations, ReplayDroppedBytes uint64
	// CompactionErrors counts failed best-effort segment deletions after
	// snapshots (the snapshot itself succeeded; the log is just longer
	// than it needs to be).
	CompactionErrors uint64
}

// Durability returns the service's durability counters.
func (s *Service) Durability() DurabilityStats {
	return DurabilityStats{
		WALAttached:        s.wal != nil,
		ReadOnly:           s.ReadOnly(),
		Appends:            s.walAppends.Value(),
		AppendErrors:       s.walAppendErrors.Value(),
		ReplayedRecords:    s.walReplayed.Value(),
		ReplayTruncations:  s.walReplayDropped.Value(),
		ReplayDroppedBytes: s.walReplayDroppedB.Value(),
		CompactionErrors:   s.walCompactErrors.Value(),
	}
}

// durabilityMetricRefs hands the server pointers to the service-owned
// durability counters so it can expose them on /metrics without mirroring.
type durabilityMetricRefs struct {
	readonly                                                       *obs.Gauge
	appends, appendErrors, replayed, replayDropped, replayDroppedB *obs.Counter
	compactErrors                                                  *obs.Counter
}

func (s *Service) durabilityMetrics() durabilityMetricRefs {
	return durabilityMetricRefs{
		readonly:       &s.readonly,
		appends:        &s.walAppends,
		appendErrors:   &s.walAppendErrors,
		replayed:       &s.walReplayed,
		replayDropped:  &s.walReplayDropped,
		replayDroppedB: &s.walReplayDroppedB,
		compactErrors:  &s.walCompactErrors,
	}
}

// lifecycleMetricRefs hands the server pointers to the service-owned
// stream-lifecycle counters (evictions, rehydrations, index partition
// rebuilds), same pattern as durabilityMetricRefs.
type lifecycleMetricRefs struct {
	evictions, rehydrations, indexRebuilds *obs.Counter
}

func (s *Service) lifecycleMetrics() lifecycleMetricRefs {
	return lifecycleMetricRefs{
		evictions:     &s.evictions,
		rehydrations:  &s.rehydrations,
		indexRebuilds: &s.indexRebuilds,
	}
}

// snapshotStreams returns the current stream set (state.go's save path).
func (s *Service) snapshotStreams() map[string]*stream {
	out := make(map[string]*stream, s.nStreams.Load())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, st := range sh.m {
			out[k] = st
		}
		sh.mu.RUnlock()
	}
	return out
}
