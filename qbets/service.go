package qbets

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Service manages one Forecaster per (queue, processor category), the
// deployment shape the paper's Section 6.2 evaluates: users ask "how long
// would a 32-processor job submitted to normal wait, at worst?".
//
// Service is safe for concurrent use and designed so traffic on distinct
// streams never contends: streams live in a fixed array of lock-striped
// shards (hashed by stream key), and each stream carries its own RWMutex.
// Observes take the stream's write lock; forecasts, profiles, and status
// reads take its read lock, which is sound because the write path refits
// the bound eagerly — read paths never mutate forecaster state.
//
// Each stream also self-monitors the paper's correctness metric online:
// every observation whose wait can be compared against the bound quoted at
// its arrival is a resolved prediction, and the rolling fraction of hits
// (wait <= quoted bound) is tracked against the target confidence — the
// live analogue of the "correct %" columns of Tables 3–7.
type Service struct {
	opts       []Option
	byProcs    atomic.Bool
	quantile   float64
	confidence float64

	shards   [serviceShards]serviceShard
	nStreams atomic.Int64
	nextSeed atomic.Int64
}

const serviceShards = 64

// hitRateWindow is the number of resolved predictions the rolling
// correctness estimate covers. Around 500 the binomial noise on the rate
// (±2σ ≈ 0.02 at C = 0.95) is small against the 0.05 slack the paper's
// tables examine, while the window still reacts to regime changes within
// a few hundred jobs.
const hitRateWindow = 500

type serviceShard struct {
	mu sync.RWMutex
	m  map[string]*stream
}

// stream couples one Forecaster with its own lock and monitoring state.
type stream struct {
	key string
	mu  sync.RWMutex
	fc  *Forecaster
	hit *obs.RollingRate

	// Trim tracking (guarded by mu): trimsSeen mirrors fc.ChangePoints()
	// after each observe so the wall-clock time of the latest trim can be
	// recorded as it happens.
	trimsSeen    int
	lastTrimUnix int64
}

// StreamStatus is a point-in-time snapshot of one stream's state and
// self-monitoring metrics.
type StreamStatus struct {
	// Stream is the registry key ("queue" or "queue/bucket").
	Stream string
	// Observations and MinObservations report history depth vs. the
	// minimum needed for a bound.
	Observations    int
	MinObservations int
	// BoundSeconds is the current bound (valid when BoundOK).
	BoundSeconds float64
	BoundOK      bool
	// RollingHitRate is the fraction of the last RollingResolved resolved
	// predictions whose wait fell within the quoted bound; the paper's
	// correctness metric, computed online. Compare against
	// TargetConfidence: a healthy stream sits at or above it.
	RollingHitRate  float64
	RollingResolved int
	// LifetimeHits / LifetimeResolved are totals since stream creation.
	LifetimeHits     uint64
	LifetimeResolved uint64
	// Trims counts change-point events; LastTrimUnix is the wall-clock
	// second of the most recent one (0 if none).
	Trims        int
	LastTrimUnix int64
	// TargetQuantile / TargetConfidence echo the service configuration.
	TargetQuantile   float64
	TargetConfidence float64
}

// NewService returns an empty Service. splitByProcs selects whether each
// queue is modeled as one stream or as four per-category streams.
func NewService(splitByProcs bool, opts ...Option) *Service {
	c := config{quantile: 0.95, confidence: 0.95}
	for _, o := range opts {
		o(&c)
	}
	s := &Service{opts: opts, quantile: c.quantile, confidence: c.confidence}
	s.byProcs.Store(splitByProcs)
	for i := range s.shards {
		s.shards[i].m = make(map[string]*stream)
	}
	return s
}

// Quantile returns the resolved quantile streams are configured with.
func (s *Service) Quantile() float64 { return s.quantile }

// Confidence returns the resolved confidence level streams are configured
// with.
func (s *Service) Confidence() float64 { return s.confidence }

func (s *Service) key(queue string, procs int) string {
	if !s.byProcs.Load() {
		return queue
	}
	return queue + "/" + CategoryOf(procs).Label()
}

// shardOf hashes a stream key to its shard (FNV-1a).
func shardOf(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h % serviceShards
}

// lookup returns the stream for a key without creating it.
func (s *Service) lookup(key string) *stream {
	sh := &s.shards[shardOf(key)]
	sh.mu.RLock()
	st := sh.m[key]
	sh.mu.RUnlock()
	return st
}

// getOrCreate returns the stream for a key, creating it on first use.
func (s *Service) getOrCreate(key string) *stream {
	if st := s.lookup(key); st != nil {
		return st
	}
	sh := &s.shards[shardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if st := sh.m[key]; st != nil {
		return st
	}
	st := s.newStream(key)
	sh.m[key] = st
	s.nStreams.Add(1)
	return st
}

// newStream builds a settled stream: the forecaster's lazily-computed
// bound is materialized up front so read paths stay mutation-free.
func (s *Service) newStream(key string) *stream {
	seed := s.nextSeed.Add(1) - 1
	opts := append([]Option{WithSeed(seed)}, s.opts...)
	fc := New(opts...)
	fc.Forecast()
	return &stream{key: key, fc: fc, hit: obs.NewRollingRate(hitRateWindow)}
}

// adoptStream wraps a restored forecaster (state.go's restore path).
func adoptStream(key string, fc *Forecaster) *stream {
	fc.Forecast() // settle the lazy refit before concurrent reads start
	return &stream{key: key, fc: fc, hit: obs.NewRollingRate(hitRateWindow), trimsSeen: fc.ChangePoints()}
}

// observe records a wait under the stream's write lock, scoring the bound
// the arriving job would have been quoted and keeping the bound fresh.
func (st *stream) observe(waitSeconds float64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if bound, ok := st.fc.Forecast(); ok {
		st.hit.Record(waitSeconds <= bound)
	}
	st.fc.Observe(waitSeconds)
	st.fc.Forecast() // eager refit: read paths must never find a stale bound
	if tr := st.fc.ChangePoints(); tr != st.trimsSeen {
		st.trimsSeen = tr
		st.lastTrimUnix = time.Now().Unix()
	}
}

func (st *stream) status(q, c float64) StreamStatus {
	st.mu.RLock()
	defer st.mu.RUnlock()
	bound, ok := st.fc.Forecast()
	rate, n := st.hit.Rate()
	hits, total := st.hit.Lifetime()
	return StreamStatus{
		Stream:           st.key,
		Observations:     st.fc.Observations(),
		MinObservations:  st.fc.MinObservations(),
		BoundSeconds:     bound,
		BoundOK:          ok,
		RollingHitRate:   rate,
		RollingResolved:  n,
		LifetimeHits:     hits,
		LifetimeResolved: total,
		Trims:            st.fc.ChangePoints(),
		LastTrimUnix:     st.lastTrimUnix,
		TargetQuantile:   q,
		TargetConfidence: c,
	}
}

// Observe records a completed wait for a queue and processor count.
func (s *Service) Observe(queue string, procs int, waitSeconds float64) {
	s.getOrCreate(s.key(queue, procs)).observe(waitSeconds)
}

// Forecast returns the bound a job with the given shape would be quoted.
// ok is false when the stream is unknown or its history is too short;
// asking about a never-observed shape does not create a stream.
func (s *Service) Forecast(queue string, procs int) (seconds float64, ok bool) {
	st := s.lookup(s.key(queue, procs))
	if st == nil {
		return 0, false
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.fc.Forecast()
}

// Profile returns the Table 8 quantile profile for a job shape, or nil if
// the stream is unknown.
func (s *Service) Profile(queue string, procs int) []Bound {
	st := s.lookup(s.key(queue, procs))
	if st == nil {
		return nil
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.fc.Profile()
}

// Observations returns the history length behind a job shape's stream
// (0 for unknown streams).
func (s *Service) Observations(queue string, procs int) int {
	st := s.lookup(s.key(queue, procs))
	if st == nil {
		return 0
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.fc.Observations()
}

// Queues lists the streams the service currently tracks (unordered).
func (s *Service) Queues() []string {
	out := make([]string, 0, s.nStreams.Load())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.m {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	return out
}

// NumStreams returns how many streams the service tracks.
func (s *Service) NumStreams() int { return int(s.nStreams.Load()) }

// StreamStats returns the status snapshot for one job shape. ok is false
// for unknown streams.
func (s *Service) StreamStats(queue string, procs int) (StreamStatus, bool) {
	st := s.lookup(s.key(queue, procs))
	if st == nil {
		return StreamStatus{}, false
	}
	return st.status(s.quantile, s.confidence), true
}

// Stats returns status snapshots for every stream (unordered; callers that
// display them sort by Stream).
func (s *Service) Stats() []StreamStatus {
	out := make([]StreamStatus, 0, s.nStreams.Load())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		streams := make([]*stream, 0, len(sh.m))
		for _, st := range sh.m {
			streams = append(streams, st)
		}
		sh.mu.RUnlock()
		// Take per-stream locks outside the shard lock so a slow stream
		// cannot stall unrelated creations in its shard.
		for _, st := range streams {
			out = append(out, st.status(s.quantile, s.confidence))
		}
	}
	return out
}

// replaceStreams swaps in a freshly restored stream set (state.go). Shard
// locks are taken in index order, so concurrent replaceStreams calls
// cannot deadlock; readers mid-flight keep operating on streams from the
// old set, which matches wholesale-restore semantics.
func (s *Service) replaceStreams(streams map[string]*stream) {
	var n int64
	var grouped [serviceShards]map[string]*stream
	for i := range grouped {
		grouped[i] = make(map[string]*stream)
	}
	for k, st := range streams {
		grouped[shardOf(k)][k] = st
		n++
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.m = grouped[i]
		sh.mu.Unlock()
	}
	s.nStreams.Store(n)
}

// snapshotStreams returns the current stream set (state.go's save path).
func (s *Service) snapshotStreams() map[string]*stream {
	out := make(map[string]*stream, s.nStreams.Load())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, st := range sh.m {
			out[k] = st
		}
		sh.mu.RUnlock()
	}
	return out
}
