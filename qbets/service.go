package qbets

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Service manages one Forecaster per (queue, processor category), the
// deployment shape the paper's Section 6.2 evaluates: users ask "how long
// would a 32-processor job submitted to normal wait, at worst?".
//
// Service is safe for concurrent use and designed so readers never wait:
// streams live in a fixed array of lock-striped shards (hashed by stream
// key) that only the write and admin paths touch, while every read API —
// Forecast, Profile, Observations, StreamStats, Stats — runs lock-free
// against two RCU-published immutable structures:
//
//   - a copy-on-write stream index (one atomic pointer load resolves a
//     (queue, processor-category) shape to its stream with no locking and
//     no key construction), rebuilt only when a stream is created or the
//     stream set is replaced wholesale, both rare; and
//   - a per-stream forecastSnapshot (bound, quantile profile, monitoring
//     counters, generation number) republished under the stream's write
//     lock every time an observation, batch chunk, trim, or replay settles
//     the forecaster.
//
// Readers therefore never acquire a stream's mutex and can never observe a
// half-applied batch chunk: a snapshot is the forecaster's state at some
// chunk boundary, and its generation number advances by exactly one per
// publication, which is what the coherence tests key on.
//
// Each stream also self-monitors the paper's correctness metric online:
// every observation whose wait can be compared against the bound quoted at
// its arrival is a resolved prediction, and the rolling fraction of hits
// (wait <= quoted bound) is tracked against the target confidence — the
// live analogue of the "correct %" columns of Tables 3–7.
type Service struct {
	opts       []Option
	byProcs    atomic.Bool
	quantile   float64
	confidence float64

	shards   [serviceShards]serviceShard
	nStreams atomic.Int64
	nextSeed atomic.Int64

	// index is the copy-on-write read path: an immutable snapshot of the
	// stream registry, swapped wholesale under indexMu whenever a stream is
	// created or replaceStreams installs a restored set. The hot read path
	// is one atomic load plus one or two map lookups — no locks, no key
	// concatenation — and the write path's stream resolution uses the same
	// structure as its fast path.
	index   atomic.Pointer[streamIndex]
	indexMu sync.Mutex

	// Durability. wal is attached once by RecoverWAL before traffic and
	// never changes; nil means observations are held in memory between
	// snapshots, the pre-WAL behavior. readonly is 1 while log appends are
	// failing (observes are refused rather than silently losing data) and
	// self-heals on the next successful append. The counters feed the
	// server's /metrics.
	wal               *wal.WAL
	readonly          obs.Gauge
	walAppends        obs.Counter
	walAppendErrors   obs.Counter
	walReplayed       obs.Counter
	walReplayDropped  obs.Counter // replay truncation events (torn/corrupt tails)
	walReplayDroppedB obs.Counter // bytes discarded by those truncations
	walCompactErrors  obs.Counter
}

// ErrInvalidWait rejects observations whose wait is NaN, infinite, or
// negative — none of which can be a queue delay, and any of which would
// poison the order statistics every future bound is computed from.
var ErrInvalidWait = errors.New("qbets: wait_seconds must be finite and non-negative")

// ErrReadOnly reports that the service is refusing observations because
// write-ahead-log appends are failing: accepting an observation it cannot
// make durable would silently violate the crash-safety contract. Forecasts
// and status reads keep working; the mode clears itself as soon as an
// append succeeds again.
var ErrReadOnly = errors.New("qbets: read-only: observation log appends are failing")

const serviceShards = 64

// cacheSlotWhole is the stream-index slot for whole-queue streams (byProcs
// off); slots below it are indexed by processor category.
const cacheSlotWhole = int(trace.NumProcBuckets)

// streamIndex is one immutable snapshot of the stream registry, published
// via Service.index. byQueue resolves the hot (queue, slot) shape without
// building a composite key; byKey resolves full registry keys; keys holds
// every stream key in sorted order so Queues and Stats are deterministic.
// A streamIndex is never mutated after publication — rebuilds allocate a
// fresh one — which is what makes the read path safe with zero locking.
type streamIndex struct {
	byKey   map[string]*stream
	byQueue map[string]*[cacheSlotWhole + 1]*stream
	keys    []string
}

// emptyStreamIndex is what NewService installs so readers never nil-check.
func emptyStreamIndex() *streamIndex {
	return &streamIndex{
		byKey:   map[string]*stream{},
		byQueue: map[string]*[cacheSlotWhole + 1]*stream{},
	}
}

// forecastSnapshot is the immutable answer the read plane serves: the
// stream's current bound, quantile profile, and self-monitoring state,
// republished (a fresh allocation, never mutated) under the stream's write
// lock each time the forecaster settles. gen starts at 1 on stream
// creation and advances by exactly one per publication — one Observe, one
// ObserveBatch chunk, or one replay group — so a reader can order the
// states it sees and tests can assert that every visible state lies on a
// chunk boundary.
type forecastSnapshot struct {
	gen              uint64
	boundSeconds     float64
	boundOK          bool
	observations     int
	minObservations  int
	profile          []Bound // immutable; shared with Profile callers
	rollingHitRate   float64
	rollingResolved  int
	lifetimeHits     uint64
	lifetimeResolved uint64
	trims            int
	lastTrimUnix     int64
}

// hitRateWindow is the number of resolved predictions the rolling
// correctness estimate covers. Around 500 the binomial noise on the rate
// (±2σ ≈ 0.02 at C = 0.95) is small against the 0.05 slack the paper's
// tables examine, while the window still reacts to regime changes within
// a few hundred jobs.
const hitRateWindow = 500

type serviceShard struct {
	mu sync.RWMutex
	m  map[string]*stream
}

// stream couples one Forecaster with its own lock and monitoring state.
// The lock serializes writers (observe, batch apply, replay, serialize);
// readers go through snap, the RCU-published forecastSnapshot, and never
// touch mu.
type stream struct {
	key  string
	mu   sync.RWMutex
	fc   *Forecaster
	hit  *obs.RollingRate
	snap atomic.Pointer[forecastSnapshot]

	// Trim tracking (guarded by mu): trimsSeen mirrors fc.ChangePoints()
	// after each observe so the wall-clock time of the latest trim can be
	// recorded as it happens.
	trimsSeen    int
	lastTrimUnix int64

	// lastSeq (guarded by mu) is the WAL sequence number of the newest
	// observation folded into fc — 0 before any logged observation. It is
	// serialized with the stream, which is what makes snapshot + log-tail
	// recovery exact: replay skips records at or below it, so nothing is
	// double-applied and nothing is lost.
	lastSeq uint64
}

// StreamStatus is a point-in-time snapshot of one stream's state and
// self-monitoring metrics.
type StreamStatus struct {
	// Stream is the registry key ("queue" or "queue/bucket").
	Stream string
	// Observations and MinObservations report history depth vs. the
	// minimum needed for a bound.
	Observations    int
	MinObservations int
	// BoundSeconds is the current bound (valid when BoundOK).
	BoundSeconds float64
	BoundOK      bool
	// RollingHitRate is the fraction of the last RollingResolved resolved
	// predictions whose wait fell within the quoted bound; the paper's
	// correctness metric, computed online. Compare against
	// TargetConfidence: a healthy stream sits at or above it.
	RollingHitRate  float64
	RollingResolved int
	// LifetimeHits / LifetimeResolved are totals since stream creation.
	LifetimeHits     uint64
	LifetimeResolved uint64
	// Trims counts change-point events; LastTrimUnix is the wall-clock
	// second of the most recent one (0 if none).
	Trims        int
	LastTrimUnix int64
	// TargetQuantile / TargetConfidence echo the service configuration.
	TargetQuantile   float64
	TargetConfidence float64
	// Generation numbers the published forecast snapshot this status was
	// read from: 1 at stream creation, +1 per applied observation, batch
	// chunk, or replay group. It is monotone for the life of a stream (a
	// wholesale restore starts new streams over at 1) and is exported as
	// the qbets_forecast_generation metric.
	Generation uint64
}

// NewService returns an empty Service. splitByProcs selects whether each
// queue is modeled as one stream or as four per-category streams.
func NewService(splitByProcs bool, opts ...Option) *Service {
	c := config{quantile: 0.95, confidence: 0.95}
	for _, o := range opts {
		o(&c)
	}
	s := &Service{opts: opts, quantile: c.quantile, confidence: c.confidence}
	s.byProcs.Store(splitByProcs)
	s.index.Store(emptyStreamIndex())
	for i := range s.shards {
		s.shards[i].m = make(map[string]*stream)
	}
	return s
}

// Quantile returns the resolved quantile streams are configured with.
func (s *Service) Quantile() float64 { return s.quantile }

// Confidence returns the resolved confidence level streams are configured
// with.
func (s *Service) Confidence() float64 { return s.confidence }

func (s *Service) key(queue string, procs int) string {
	if !s.byProcs.Load() {
		return queue
	}
	return queue + "/" + CategoryOf(procs).Label()
}

// shardOf hashes a stream key to its shard (FNV-1a).
func shardOf(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h % serviceShards
}

// lookup returns the stream for a key without creating it: one atomic load
// of the published index, no locking. A stream whose creation has not yet
// republished the index is momentarily invisible here, which reads the
// same as arriving just before the creation — the shard maps stay the
// authority for the write path.
func (s *Service) lookup(key string) *stream {
	return s.index.Load().byKey[key]
}

// getOrCreate returns the stream for a key, creating it on first use. The
// index is rebuilt after the shard insert (outside the shard lock —
// rebuildIndex read-locks every shard), so by the time this returns the
// new stream is visible to lock-free readers.
func (s *Service) getOrCreate(key string) *stream {
	if st := s.lookup(key); st != nil {
		return st
	}
	sh := &s.shards[shardOf(key)]
	sh.mu.Lock()
	st := sh.m[key]
	created := st == nil
	if created {
		st = s.newStream(key)
		sh.m[key] = st
		s.nStreams.Add(1)
	}
	sh.mu.Unlock()
	if created {
		s.rebuildIndex()
	}
	return st
}

// rebuildIndex publishes a fresh immutable streamIndex from the shard
// maps. indexMu serializes rebuilds so publications are ordered; a rebuild
// racing a concurrent insert may miss it, but the inserter performs its
// own rebuild afterwards, so the index always catches up. Creation and
// wholesale restore are the only triggers — both rare, so the O(streams)
// rebuild never sits on a hot path.
func (s *Service) rebuildIndex() {
	s.indexMu.Lock()
	defer s.indexMu.Unlock()
	byProcs := s.byProcs.Load()
	idx := &streamIndex{
		byKey:   make(map[string]*stream, s.nStreams.Load()),
		byQueue: make(map[string]*[cacheSlotWhole + 1]*stream),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, st := range sh.m {
			idx.byKey[k] = st
			idx.keys = append(idx.keys, k)
			queue, slot, ok := splitKey(k, byProcs)
			if !ok {
				// A key that does not parse under the current routing mode
				// (e.g. restored from a blob written in the other mode) is
				// unreachable through the (queue, procs) APIs but stays
				// listed in Queues/Stats via byKey.
				continue
			}
			arr := idx.byQueue[queue]
			if arr == nil {
				arr = new([cacheSlotWhole + 1]*stream)
				idx.byQueue[queue] = arr
			}
			arr[slot] = st
		}
		sh.mu.RUnlock()
	}
	slices.Sort(idx.keys)
	s.index.Store(idx)
}

// splitKey inverts keyForSlot under a routing mode: whole-queue keys map
// to the queue itself, per-category keys split at the trailing
// "/<bucket label>".
func splitKey(key string, byProcs bool) (queue string, slot int, ok bool) {
	if !byProcs {
		return key, cacheSlotWhole, true
	}
	for b := 0; b < int(trace.NumProcBuckets); b++ {
		label := ProcCategory(b).Label()
		if len(key) > len(label)+1 && key[len(key)-len(label)-1] == '/' && key[len(key)-len(label):] == label {
			return key[:len(key)-len(label)-1], b, true
		}
	}
	return "", 0, false
}

// slotOf maps a processor count to its streamCache slot under the current
// routing mode. Batch callers capture the slots for a whole chunk before
// resolving streams, so one chunk can never see two routing modes.
func (s *Service) slotOf(procs int) int {
	if !s.byProcs.Load() {
		return cacheSlotWhole
	}
	return int(CategoryOf(procs))
}

// keyForSlot builds the registry key for a queue and cache slot; it agrees
// with key() by construction.
func (s *Service) keyForSlot(queue string, slot int) string {
	if slot == cacheSlotWhole {
		return queue
	}
	return queue + "/" + ProcCategory(slot).Label()
}

// streamForSlot resolves (queue, slot) to its stream through the published
// index — the hot ingest path, one atomic load and two map reads with no
// key construction — falling back to key construction + getOrCreate on a
// miss. There is no insert-back step: getOrCreate rebuilds the index, so
// the next call hits.
func (s *Service) streamForSlot(queue string, slot int) *stream {
	if arr := s.index.Load().byQueue[queue]; arr != nil {
		if st := arr[slot]; st != nil {
			return st
		}
	}
	return s.getOrCreate(s.keyForSlot(queue, slot))
}

// readStream is the forecast-plane lookup: (queue, procs) to stream with
// zero locks and zero allocations, never creating anything. nil means the
// shape is unknown.
func (s *Service) readStream(queue string, procs int) *stream {
	arr := s.index.Load().byQueue[queue]
	if arr == nil {
		return nil
	}
	return arr[s.slotOf(procs)]
}

// streamFor is the hot-path form of getOrCreate(key(queue, procs)).
func (s *Service) streamFor(queue string, procs int) *stream {
	return s.streamForSlot(queue, s.slotOf(procs))
}

// newStream builds a settled stream: the forecaster's lazily-computed
// bound is materialized up front so read paths stay mutation-free, and the
// first forecast snapshot (generation 1) is published before the stream
// becomes reachable.
func (s *Service) newStream(key string) *stream {
	seed := s.nextSeed.Add(1) - 1
	opts := append([]Option{WithSeed(seed)}, s.opts...)
	fc := New(opts...)
	fc.Forecast()
	st := &stream{key: key, fc: fc, hit: obs.NewRollingRate(hitRateWindow)}
	st.publishLocked()
	return st
}

// adoptStream wraps a restored forecaster (state.go's restore path).
// lastSeq is the WAL sequence number the snapshot covers for this stream.
// The restored state's forecast snapshot is installed here, before
// replaceStreams publishes the stream — a reader that resolves the new
// stream can never see a stale or missing snapshot.
func adoptStream(key string, fc *Forecaster, lastSeq uint64) *stream {
	fc.Forecast() // settle the lazy refit before concurrent reads start
	st := &stream{key: key, fc: fc, hit: obs.NewRollingRate(hitRateWindow), trimsSeen: fc.ChangePoints(), lastSeq: lastSeq}
	st.publishLocked()
	return st
}

// publishLocked derives a fresh immutable forecastSnapshot from the
// forecaster and monitoring state and RCU-publishes it. Callers hold the
// stream's write lock (or, on the creation paths, sole ownership). The
// forecaster must be settled — every write path refits eagerly before
// publishing. This is the single point where the read plane learns about
// writes: one publication per observation, batch chunk, or replay group,
// with the generation advancing by exactly one.
func (st *stream) publishLocked() {
	var gen uint64 = 1
	if prev := st.snap.Load(); prev != nil {
		gen = prev.gen + 1
	}
	bound, ok := st.fc.Forecast()
	rate, n := st.hit.Rate()
	hits, total := st.hit.Lifetime()
	st.snap.Store(&forecastSnapshot{
		gen:              gen,
		boundSeconds:     bound,
		boundOK:          ok,
		observations:     st.fc.Observations(),
		minObservations:  st.fc.MinObservations(),
		profile:          st.fc.Profile(),
		rollingHitRate:   rate,
		rollingResolved:  n,
		lifetimeHits:     hits,
		lifetimeResolved: total,
		trims:            st.fc.ChangePoints(),
		lastTrimUnix:     st.lastTrimUnix,
	})
}

// observe records a wait under the stream's write lock: the observation is
// appended to the service's WAL first (if one is attached), then folded
// into the forecaster, scoring the bound the arriving job would have been
// quoted and keeping the bound fresh. Holding the write lock across
// append-then-apply is what keeps (forecaster state, lastSeq) consistent —
// a snapshot taken concurrently sees either both effects or neither.
func (st *stream) observe(s *Service, waitSeconds float64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	var seq uint64
	if s.wal != nil {
		var err error
		// Records carry the WAL's coarse clock (exact to the last sync):
		// the timestamp is forensic — recovery replays by sequence, not
		// time — and a per-observe time syscall is the hot path's single
		// largest avoidable cost.
		seq, err = s.wal.Append(st.key, waitSeconds, s.wal.CoarseUnixNanos())
		if err != nil {
			s.walAppendErrors.Inc()
			s.readonly.Set(1)
			return fmt.Errorf("%w: %v", ErrReadOnly, err)
		}
		s.walAppends.Inc()
		// Clear the read-only latch only when it is actually set: an
		// unconditional store would bounce the gauge's cacheline between
		// every observing core.
		if s.readonly.Value() != 0 {
			s.readonly.Set(0)
		}
	}
	st.applyLocked(waitSeconds, seq, true)
	return nil
}

// applyLocked folds a wait into the forecaster. scoreHit is false on the
// replay path: recovered observations update predictor state exactly as
// they did in the crashed process, but the rolling correctness monitor
// only scores quotes this process actually made (the same rule snapshot
// restore follows).
func (st *stream) applyLocked(waitSeconds float64, seq uint64, scoreHit bool) {
	if scoreHit {
		if bound, ok := st.fc.Forecast(); ok {
			st.hit.Record(waitSeconds <= bound)
		}
	}
	st.fc.Observe(waitSeconds)
	st.fc.Forecast() // eager refit: read paths must never find a stale bound
	if seq > st.lastSeq {
		st.lastSeq = seq
	}
	if tr := st.fc.ChangePoints(); tr != st.trimsSeen {
		st.trimsSeen = tr
		st.lastTrimUnix = time.Now().Unix()
	}
	st.publishLocked()
}

// applyGroupLocked folds one batch group into the forecaster under the
// single write-lock acquisition ObserveBatch already holds. Each wait is
// still scored against the bound quoted at its arrival — the correctness
// monitor and the predictor's own change-point scoring are per-record by
// definition, so final state depends only on the wait sequence, not on how
// it was batched — but the trailing settle, lastSeq advance, and trim
// bookkeeping run once per group instead of once per record. lastSeq is
// the sequence number of the group's newest record (0 without a WAL).
func (st *stream) applyGroupLocked(chunk []ObserveRecord, idxs []int32, lastSeq uint64) {
	for _, idx := range idxs {
		w := chunk[idx].WaitSeconds
		if bound, ok := st.fc.Forecast(); ok {
			st.hit.Record(w <= bound)
		}
		st.fc.Observe(w)
	}
	st.fc.Forecast() // eager refit: read paths must never find a stale bound
	if lastSeq > st.lastSeq {
		st.lastSeq = lastSeq
	}
	if tr := st.fc.ChangePoints(); tr != st.trimsSeen {
		st.trimsSeen = tr
		st.lastTrimUnix = time.Now().Unix()
	}
	// One publication per chunk: readers see whole chunks or nothing.
	st.publishLocked()
}

// replayGroupLocked is applyGroupLocked's recovery-path sibling: recovered
// records at or below the stream's snapshot anchor are skipped, quotes are
// not scored (this process never made them), and the forecaster settles
// once per group — which is what makes batched replay measurably faster
// than the record-at-a-time path on a long log tail.
func (st *stream) replayGroupLocked(waits []float64, seqs []uint64) {
	applied := false
	for i, seq := range seqs {
		if seq <= st.lastSeq {
			continue
		}
		st.fc.Observe(waits[i])
		st.lastSeq = seq
		applied = true
	}
	if !applied {
		return
	}
	st.fc.Forecast()
	if tr := st.fc.ChangePoints(); tr != st.trimsSeen {
		st.trimsSeen = tr
		st.lastTrimUnix = time.Now().Unix()
	}
	st.publishLocked()
}

// BatchError reports a batch that was refused or cut short at a specific
// record: records before Index were applied (and are durable under the
// WAL's sync policy), records at and after it were not. Err carries the
// cause — errors.Is(err, ErrReadOnly) means the observation log stopped
// taking appends mid-batch and the client should retry the remainder after
// the Retry-After interval; ErrInvalidWait means the batch was rejected up
// front without applying anything.
type BatchError struct {
	Index int
	Err   error
}

func (e *BatchError) Error() string { return fmt.Sprintf("record %d: %v", e.Index, e.Err) }
func (e *BatchError) Unwrap() error { return e.Err }

// observeBatchChunk is how many records one WAL append — and, under
// sync=always, one fsync — covers. It bounds how much work a single
// multi-stream lock hold can pin and is the granularity of partial
// failure: a batch dies on a chunk boundary, so ObserveBatch's applied
// count is exact.
const observeBatchChunk = 256

// batchGroup is one (queue, category) run within a chunk: the indices of
// the chunk's records that route to one stream.
type batchGroup struct {
	queue string
	slot  int
	st    *stream
	idxs  []int32
}

// batchScratch is the pooled working state of one ObserveBatch call; the
// ingest hot path reuses it so batch grouping allocates nothing in steady
// state.
type batchScratch struct {
	groups  []batchGroup
	entries []wal.Entry
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// release returns the scratch to the pool with anything that could pin
// request memory cleared; group index slices keep their capacity.
func (sc *batchScratch) release() {
	for i := range sc.groups {
		sc.groups[i].queue, sc.groups[i].st = "", nil
	}
	clear(sc.entries)
	batchScratchPool.Put(sc)
}

// ObserveBatch records a batch of completed waits, amortizing the write
// path: records are grouped by stream, each chunk is appended to the WAL
// as one batch (one fsync under sync=always, against one per record for
// the loop-over-Observe equivalent), and each stream's group is applied
// under a single lock acquisition. Final predictor state is identical to
// calling Observe once per record in order.
//
// On success it returns (len(records), nil). A record that cannot be a
// queue delay rejects the whole batch up front — (0, *BatchError wrapping
// ErrInvalidWait) — applying nothing. If the observation log stops taking
// appends partway through, every record before the returned count was
// applied and durable, no later record was, and the *BatchError (wrapping
// ErrReadOnly) carries the index of the first unapplied record so the
// client can retry exactly the remainder.
func (s *Service) ObserveBatch(records []ObserveRecord) (applied int, err error) {
	for i := range records {
		w := records[i].WaitSeconds
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return 0, &BatchError{Index: i, Err: ErrInvalidWait}
		}
	}
	if len(records) == 0 {
		return 0, nil
	}
	sc := batchScratchPool.Get().(*batchScratch)
	defer sc.release()
	for base := 0; base < len(records); base += observeBatchChunk {
		end := min(base+observeBatchChunk, len(records))
		if cerr := s.observeChunk(records[base:end], sc); cerr != nil {
			return base, &BatchError{Index: base, Err: cerr}
		}
		applied = end
	}
	return applied, nil
}

// observeChunk groups, logs, and applies one chunk. The chunk is atomic:
// either every record is appended (one AppendBatch) and applied, or none
// is. All affected stream write locks are held, in key order, across
// append-then-apply — the same invariant the single-record path keeps, so
// a concurrent snapshot's (state, lastSeq) view stays consistent and
// compaction can never delete a segment whose records some stream has not
// yet folded in.
func (s *Service) observeChunk(chunk []ObserveRecord, sc *batchScratch) error {
	byProcs := s.byProcs.Load()
	groups := sc.groups[:0]
	for i := range chunk {
		slot := cacheSlotWhole
		if byProcs {
			slot = int(CategoryOf(chunk[i].Procs))
		}
		gi := 0
		for ; gi < len(groups); gi++ {
			if groups[gi].slot == slot && groups[gi].queue == chunk[i].Queue {
				groups[gi].idxs = append(groups[gi].idxs, int32(i))
				break
			}
		}
		if gi == len(groups) {
			if len(groups) < cap(groups) {
				groups = groups[:gi+1]
				g := &groups[gi]
				g.queue, g.slot, g.st, g.idxs = chunk[i].Queue, slot, nil, append(g.idxs[:0], int32(i))
			} else {
				groups = append(groups, batchGroup{queue: chunk[i].Queue, slot: slot, idxs: []int32{int32(i)}})
			}
		}
	}
	sc.groups = groups
	for gi := range groups {
		groups[gi].st = s.streamForSlot(groups[gi].queue, groups[gi].slot)
	}
	// Distinct (queue, slot) pairs resolve to distinct streams (the slot
	// set is fixed for the chunk), so sorting by key gives a strict global
	// lock order — concurrent batches cannot deadlock.
	slices.SortFunc(groups, func(a, b batchGroup) int { return strings.Compare(a.st.key, b.st.key) })
	for gi := range groups {
		groups[gi].st.mu.Lock()
	}
	defer func() {
		for gi := range groups {
			groups[gi].st.mu.Unlock()
		}
	}()
	if s.wal == nil {
		for gi := range groups {
			groups[gi].st.applyGroupLocked(chunk, groups[gi].idxs, 0)
		}
		return nil
	}
	entries := sc.entries[:0]
	if cap(entries) < len(chunk) {
		entries = make([]wal.Entry, 0, observeBatchChunk)
	}
	entries = entries[:len(chunk)]
	now := s.wal.CoarseUnixNanos()
	for gi := range groups {
		g := &groups[gi]
		for _, idx := range g.idxs {
			entries[idx] = wal.Entry{Key: g.st.key, Wait: chunk[idx].WaitSeconds, UnixNanos: now}
		}
	}
	sc.entries = entries
	firstSeq, werr := s.wal.AppendBatch(entries)
	if werr != nil {
		s.walAppendErrors.Inc()
		s.readonly.Set(1)
		return fmt.Errorf("%w: %v", ErrReadOnly, werr)
	}
	s.walAppends.Add(uint64(len(chunk)))
	if s.readonly.Value() != 0 {
		s.readonly.Set(0)
	}
	for gi := range groups {
		g := &groups[gi]
		g.st.applyGroupLocked(chunk, g.idxs, firstSeq+uint64(g.idxs[len(g.idxs)-1]))
	}
	return nil
}

// status renders the stream's published snapshot as a StreamStatus — a
// pure read of immutable data, no locks, no allocations.
func (st *stream) status(q, c float64) StreamStatus {
	snap := st.snap.Load()
	return StreamStatus{
		Stream:           st.key,
		Observations:     snap.observations,
		MinObservations:  snap.minObservations,
		BoundSeconds:     snap.boundSeconds,
		BoundOK:          snap.boundOK,
		RollingHitRate:   snap.rollingHitRate,
		RollingResolved:  snap.rollingResolved,
		LifetimeHits:     snap.lifetimeHits,
		LifetimeResolved: snap.lifetimeResolved,
		Trims:            snap.trims,
		LastTrimUnix:     snap.lastTrimUnix,
		TargetQuantile:   q,
		TargetConfidence: c,
		Generation:       snap.gen,
	}
}

// Observe records a completed wait for a queue and processor count. It
// returns ErrInvalidWait for waits that cannot be queue delays (NaN, Inf,
// negative) and ErrReadOnly (wrapped, with the cause) when a write-ahead
// log is attached and the append failed — in that case the observation was
// NOT recorded, by design: refusing is recoverable, silent loss is not.
func (s *Service) Observe(queue string, procs int, waitSeconds float64) error {
	if math.IsNaN(waitSeconds) || math.IsInf(waitSeconds, 0) || waitSeconds < 0 {
		return ErrInvalidWait
	}
	return s.streamFor(queue, procs).observe(s, waitSeconds)
}

// Forecast returns the bound a job with the given shape would be quoted.
// ok is false when the stream is unknown or its history is too short;
// asking about a never-observed shape does not create a stream.
//
// Forecast is wait-free and allocation-free: one atomic index load, one
// atomic snapshot load, no locks — it cannot be delayed by concurrent
// ingest, refits, or snapshot saves on the same stream.
func (s *Service) Forecast(queue string, procs int) (seconds float64, ok bool) {
	st := s.readStream(queue, procs)
	if st == nil {
		return 0, false
	}
	snap := st.snap.Load()
	return snap.boundSeconds, snap.boundOK
}

// Profile returns the Table 8 quantile profile for a job shape, or nil if
// the stream is unknown.
//
// The returned slice is the published immutable snapshot itself, shared
// with every concurrent caller — treat it as read-only. Mutating it is a
// data race. This is what makes Profile allocation-free; copy it if you
// need to edit.
func (s *Service) Profile(queue string, procs int) []Bound {
	st := s.readStream(queue, procs)
	if st == nil {
		return nil
	}
	return st.snap.Load().profile
}

// Observations returns the history length behind a job shape's stream
// (0 for unknown streams).
func (s *Service) Observations(queue string, procs int) int {
	st := s.readStream(queue, procs)
	if st == nil {
		return 0
	}
	return st.snap.Load().observations
}

// Queues lists the streams the service currently tracks, sorted by stream
// key.
func (s *Service) Queues() []string {
	return slices.Clone(s.index.Load().keys)
}

// NumStreams returns how many streams the service tracks.
func (s *Service) NumStreams() int { return int(s.nStreams.Load()) }

// StreamStats returns the status snapshot for one job shape. ok is false
// for unknown streams. Like Forecast, it is lock-free and allocation-free.
func (s *Service) StreamStats(queue string, procs int) (StreamStatus, bool) {
	st := s.readStream(queue, procs)
	if st == nil {
		return StreamStatus{}, false
	}
	return st.status(s.quantile, s.confidence), true
}

// Stats returns status snapshots for every stream, sorted by stream key.
// It walks the published index, so it takes no locks and cannot stall or
// be stalled by ingest.
func (s *Service) Stats() []StreamStatus {
	idx := s.index.Load()
	out := make([]StreamStatus, 0, len(idx.keys))
	for _, k := range idx.keys {
		out = append(out, idx.byKey[k].status(s.quantile, s.confidence))
	}
	return out
}

// replaceStreams swaps in a freshly restored stream set (state.go). Shard
// locks are taken in index order, so concurrent replaceStreams calls
// cannot deadlock; readers mid-flight keep operating on streams from the
// old set, which matches wholesale-restore semantics.
func (s *Service) replaceStreams(streams map[string]*stream) {
	var n int64
	var grouped [serviceShards]map[string]*stream
	for i := range grouped {
		grouped[i] = make(map[string]*stream)
	}
	for k, st := range streams {
		grouped[shardOf(k)][k] = st
		n++
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.m = grouped[i]
		sh.mu.Unlock()
	}
	s.nStreams.Store(n)
	// Republish the index from the new shard maps. The rebuild always
	// reads current shard state, so it can never resurrect an old-set
	// stream; once this returns, every lock-free reader resolves streams
	// (and therefore forecast snapshots) from the restored set only.
	s.rebuildIndex()
}

// RecoverWAL replays w's surviving records on top of the service's current
// state — typically a freshly restored snapshot — and attaches w so every
// subsequent Observe is logged before it mutates a stream. Records a
// stream's snapshot already covers (sequence number at or below the
// stream's persisted lastSeq) are skipped, so the merge is exact: each
// observation lands exactly once whatever the crash timing. Torn or
// corrupt log tails are tolerated (truncated and counted, never fatal).
//
// RecoverWAL must be called once, before the service takes traffic.
//
// Replay goes through the batch-apply path: records are buffered, grouped
// by stream, and folded in one lock acquisition and one settle per group —
// within a stream the log's order is preserved exactly, and streams are
// independent, so recovered state matches record-at-a-time replay.
func (s *Service) RecoverWAL(w *wal.WAL) (wal.ReplayStats, error) {
	const replayFlushEvery = 1024
	type pendingGroup struct {
		st    *stream
		waits []float64
		seqs  []uint64
	}
	pending := make(map[*stream]*pendingGroup)
	buffered := 0
	flush := func() {
		for _, p := range pending {
			p.st.mu.Lock()
			p.st.replayGroupLocked(p.waits, p.seqs)
			p.st.mu.Unlock()
		}
		clear(pending)
		buffered = 0
	}
	stats, err := w.Replay(func(r wal.Record) {
		st := s.getOrCreate(r.Key)
		p := pending[st]
		if p == nil {
			p = &pendingGroup{st: st}
			pending[st] = p
		}
		p.waits = append(p.waits, r.Wait)
		p.seqs = append(p.seqs, r.Seq)
		if buffered++; buffered >= replayFlushEvery {
			flush()
		}
	})
	flush()
	if err != nil {
		return stats, err
	}
	s.wal = w
	s.walReplayed.Add(uint64(stats.Records))
	s.walReplayDropped.Add(uint64(stats.Truncations))
	s.walReplayDroppedB.Add(uint64(stats.DroppedBytes))
	return stats, nil
}

// ReadOnly reports whether the service is currently refusing observations
// because WAL appends are failing (see ErrReadOnly).
func (s *Service) ReadOnly() bool { return s.readonly.Value() != 0 }

// DurabilityStats is a snapshot of the service's durability counters.
type DurabilityStats struct {
	// WALAttached is true when observations are logged before being applied.
	WALAttached bool
	// ReadOnly mirrors Service.ReadOnly.
	ReadOnly bool
	// Appends / AppendErrors count WAL appends since process start.
	Appends, AppendErrors uint64
	// ReplayedRecords is how many log records startup recovery applied or
	// skipped as already-snapshotted; ReplayTruncations / ReplayDroppedBytes
	// describe the torn or corrupt tails recovery discarded.
	ReplayedRecords, ReplayTruncations, ReplayDroppedBytes uint64
	// CompactionErrors counts failed best-effort segment deletions after
	// snapshots (the snapshot itself succeeded; the log is just longer
	// than it needs to be).
	CompactionErrors uint64
}

// Durability returns the service's durability counters.
func (s *Service) Durability() DurabilityStats {
	return DurabilityStats{
		WALAttached:        s.wal != nil,
		ReadOnly:           s.ReadOnly(),
		Appends:            s.walAppends.Value(),
		AppendErrors:       s.walAppendErrors.Value(),
		ReplayedRecords:    s.walReplayed.Value(),
		ReplayTruncations:  s.walReplayDropped.Value(),
		ReplayDroppedBytes: s.walReplayDroppedB.Value(),
		CompactionErrors:   s.walCompactErrors.Value(),
	}
}

// durabilityMetricRefs hands the server pointers to the service-owned
// durability counters so it can expose them on /metrics without mirroring.
type durabilityMetricRefs struct {
	readonly                                                       *obs.Gauge
	appends, appendErrors, replayed, replayDropped, replayDroppedB *obs.Counter
	compactErrors                                                  *obs.Counter
}

func (s *Service) durabilityMetrics() durabilityMetricRefs {
	return durabilityMetricRefs{
		readonly:       &s.readonly,
		appends:        &s.walAppends,
		appendErrors:   &s.walAppendErrors,
		replayed:       &s.walReplayed,
		replayDropped:  &s.walReplayDropped,
		replayDroppedB: &s.walReplayDroppedB,
		compactErrors:  &s.walCompactErrors,
	}
}

// snapshotStreams returns the current stream set (state.go's save path).
func (s *Service) snapshotStreams() map[string]*stream {
	out := make(map[string]*stream, s.nStreams.Load())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, st := range sh.m {
			out[k] = st
		}
		sh.mu.RUnlock()
	}
	return out
}
