package qbets

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Service manages one Forecaster per (queue, processor category), the
// deployment shape the paper's Section 6.2 evaluates: users ask "how long
// would a 32-processor job submitted to normal wait, at worst?".
//
// Service is safe for concurrent use and designed so traffic on distinct
// streams never contends: streams live in a fixed array of lock-striped
// shards (hashed by stream key), and each stream carries its own RWMutex.
// Observes take the stream's write lock; forecasts, profiles, and status
// reads take its read lock, which is sound because the write path refits
// the bound eagerly — read paths never mutate forecaster state.
//
// Each stream also self-monitors the paper's correctness metric online:
// every observation whose wait can be compared against the bound quoted at
// its arrival is a resolved prediction, and the rolling fraction of hits
// (wait <= quoted bound) is tracked against the target confidence — the
// live analogue of the "correct %" columns of Tables 3–7.
type Service struct {
	opts       []Option
	byProcs    atomic.Bool
	quantile   float64
	confidence float64

	shards   [serviceShards]serviceShard
	nStreams atomic.Int64
	nextSeed atomic.Int64

	// scache short-circuits the (queue, processor category) → *stream
	// resolution on the observe hot path: building the composite stream key
	// costs a string concatenation per call, which at batch-ingest rates is
	// the dominant per-record allocation. Entries are invalidated wholesale
	// (generation bump) when replaceStreams swaps the stream set.
	scache streamCache

	// Durability. wal is attached once by RecoverWAL before traffic and
	// never changes; nil means observations are held in memory between
	// snapshots, the pre-WAL behavior. readonly is 1 while log appends are
	// failing (observes are refused rather than silently losing data) and
	// self-heals on the next successful append. The counters feed the
	// server's /metrics.
	wal               *wal.WAL
	readonly          obs.Gauge
	walAppends        obs.Counter
	walAppendErrors   obs.Counter
	walReplayed       obs.Counter
	walReplayDropped  obs.Counter // replay truncation events (torn/corrupt tails)
	walReplayDroppedB obs.Counter // bytes discarded by those truncations
	walCompactErrors  obs.Counter
}

// ErrInvalidWait rejects observations whose wait is NaN, infinite, or
// negative — none of which can be a queue delay, and any of which would
// poison the order statistics every future bound is computed from.
var ErrInvalidWait = errors.New("qbets: wait_seconds must be finite and non-negative")

// ErrReadOnly reports that the service is refusing observations because
// write-ahead-log appends are failing: accepting an observation it cannot
// make durable would silently violate the crash-safety contract. Forecasts
// and status reads keep working; the mode clears itself as soon as an
// append succeeds again.
var ErrReadOnly = errors.New("qbets: read-only: observation log appends are failing")

const serviceShards = 64

// cacheSlotWhole is the streamCache slot for whole-queue streams (byProcs
// off); slots below it are indexed by processor category.
const cacheSlotWhole = int(trace.NumProcBuckets)

// streamCache maps a queue name to its resolved streams, one slot per
// processor category plus one for the whole-queue stream. Reads take the
// RLock for the whole lookup (slot pointers are written under the full
// lock); gen guards against caching a stream from a set that
// replaceStreams has since swapped out.
type streamCache struct {
	mu  sync.RWMutex
	gen uint64
	m   map[string]*[cacheSlotWhole + 1]*stream
}

// hitRateWindow is the number of resolved predictions the rolling
// correctness estimate covers. Around 500 the binomial noise on the rate
// (±2σ ≈ 0.02 at C = 0.95) is small against the 0.05 slack the paper's
// tables examine, while the window still reacts to regime changes within
// a few hundred jobs.
const hitRateWindow = 500

type serviceShard struct {
	mu sync.RWMutex
	m  map[string]*stream
}

// stream couples one Forecaster with its own lock and monitoring state.
type stream struct {
	key string
	mu  sync.RWMutex
	fc  *Forecaster
	hit *obs.RollingRate

	// Trim tracking (guarded by mu): trimsSeen mirrors fc.ChangePoints()
	// after each observe so the wall-clock time of the latest trim can be
	// recorded as it happens.
	trimsSeen    int
	lastTrimUnix int64

	// lastSeq (guarded by mu) is the WAL sequence number of the newest
	// observation folded into fc — 0 before any logged observation. It is
	// serialized with the stream, which is what makes snapshot + log-tail
	// recovery exact: replay skips records at or below it, so nothing is
	// double-applied and nothing is lost.
	lastSeq uint64
}

// StreamStatus is a point-in-time snapshot of one stream's state and
// self-monitoring metrics.
type StreamStatus struct {
	// Stream is the registry key ("queue" or "queue/bucket").
	Stream string
	// Observations and MinObservations report history depth vs. the
	// minimum needed for a bound.
	Observations    int
	MinObservations int
	// BoundSeconds is the current bound (valid when BoundOK).
	BoundSeconds float64
	BoundOK      bool
	// RollingHitRate is the fraction of the last RollingResolved resolved
	// predictions whose wait fell within the quoted bound; the paper's
	// correctness metric, computed online. Compare against
	// TargetConfidence: a healthy stream sits at or above it.
	RollingHitRate  float64
	RollingResolved int
	// LifetimeHits / LifetimeResolved are totals since stream creation.
	LifetimeHits     uint64
	LifetimeResolved uint64
	// Trims counts change-point events; LastTrimUnix is the wall-clock
	// second of the most recent one (0 if none).
	Trims        int
	LastTrimUnix int64
	// TargetQuantile / TargetConfidence echo the service configuration.
	TargetQuantile   float64
	TargetConfidence float64
}

// NewService returns an empty Service. splitByProcs selects whether each
// queue is modeled as one stream or as four per-category streams.
func NewService(splitByProcs bool, opts ...Option) *Service {
	c := config{quantile: 0.95, confidence: 0.95}
	for _, o := range opts {
		o(&c)
	}
	s := &Service{opts: opts, quantile: c.quantile, confidence: c.confidence}
	s.byProcs.Store(splitByProcs)
	s.scache.m = make(map[string]*[cacheSlotWhole + 1]*stream)
	for i := range s.shards {
		s.shards[i].m = make(map[string]*stream)
	}
	return s
}

// Quantile returns the resolved quantile streams are configured with.
func (s *Service) Quantile() float64 { return s.quantile }

// Confidence returns the resolved confidence level streams are configured
// with.
func (s *Service) Confidence() float64 { return s.confidence }

func (s *Service) key(queue string, procs int) string {
	if !s.byProcs.Load() {
		return queue
	}
	return queue + "/" + CategoryOf(procs).Label()
}

// shardOf hashes a stream key to its shard (FNV-1a).
func shardOf(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h % serviceShards
}

// lookup returns the stream for a key without creating it.
func (s *Service) lookup(key string) *stream {
	sh := &s.shards[shardOf(key)]
	sh.mu.RLock()
	st := sh.m[key]
	sh.mu.RUnlock()
	return st
}

// getOrCreate returns the stream for a key, creating it on first use.
func (s *Service) getOrCreate(key string) *stream {
	if st := s.lookup(key); st != nil {
		return st
	}
	sh := &s.shards[shardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if st := sh.m[key]; st != nil {
		return st
	}
	st := s.newStream(key)
	sh.m[key] = st
	s.nStreams.Add(1)
	return st
}

// slotOf maps a processor count to its streamCache slot under the current
// routing mode. Batch callers capture the slots for a whole chunk before
// resolving streams, so one chunk can never see two routing modes.
func (s *Service) slotOf(procs int) int {
	if !s.byProcs.Load() {
		return cacheSlotWhole
	}
	return int(CategoryOf(procs))
}

// keyForSlot builds the registry key for a queue and cache slot; it agrees
// with key() by construction.
func (s *Service) keyForSlot(queue string, slot int) string {
	if slot == cacheSlotWhole {
		return queue
	}
	return queue + "/" + ProcCategory(slot).Label()
}

// streamForSlot resolves (queue, slot) to its stream through the cache,
// falling back to key construction + getOrCreate on a miss.
func (s *Service) streamForSlot(queue string, slot int) *stream {
	c := &s.scache
	c.mu.RLock()
	var st *stream
	gen := c.gen
	if arr := c.m[queue]; arr != nil {
		st = arr[slot]
	}
	c.mu.RUnlock()
	if st != nil {
		return st
	}
	st = s.getOrCreate(s.keyForSlot(queue, slot))
	c.mu.Lock()
	if c.gen == gen {
		// Only cache if the stream set has not been swapped since the
		// lookup: a stale entry would silently route traffic to an orphaned
		// stream forever, where a miss merely costs the slow path once.
		arr := c.m[queue]
		if arr == nil {
			arr = new([cacheSlotWhole + 1]*stream)
			c.m[queue] = arr
		}
		arr[slot] = st
	}
	c.mu.Unlock()
	return st
}

// streamFor is the hot-path form of getOrCreate(key(queue, procs)).
func (s *Service) streamFor(queue string, procs int) *stream {
	return s.streamForSlot(queue, s.slotOf(procs))
}

// newStream builds a settled stream: the forecaster's lazily-computed
// bound is materialized up front so read paths stay mutation-free.
func (s *Service) newStream(key string) *stream {
	seed := s.nextSeed.Add(1) - 1
	opts := append([]Option{WithSeed(seed)}, s.opts...)
	fc := New(opts...)
	fc.Forecast()
	return &stream{key: key, fc: fc, hit: obs.NewRollingRate(hitRateWindow)}
}

// adoptStream wraps a restored forecaster (state.go's restore path).
// lastSeq is the WAL sequence number the snapshot covers for this stream.
func adoptStream(key string, fc *Forecaster, lastSeq uint64) *stream {
	fc.Forecast() // settle the lazy refit before concurrent reads start
	return &stream{key: key, fc: fc, hit: obs.NewRollingRate(hitRateWindow), trimsSeen: fc.ChangePoints(), lastSeq: lastSeq}
}

// observe records a wait under the stream's write lock: the observation is
// appended to the service's WAL first (if one is attached), then folded
// into the forecaster, scoring the bound the arriving job would have been
// quoted and keeping the bound fresh. Holding the write lock across
// append-then-apply is what keeps (forecaster state, lastSeq) consistent —
// a snapshot taken concurrently sees either both effects or neither.
func (st *stream) observe(s *Service, waitSeconds float64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	var seq uint64
	if s.wal != nil {
		var err error
		// Records carry the WAL's coarse clock (exact to the last sync):
		// the timestamp is forensic — recovery replays by sequence, not
		// time — and a per-observe time syscall is the hot path's single
		// largest avoidable cost.
		seq, err = s.wal.Append(st.key, waitSeconds, s.wal.CoarseUnixNanos())
		if err != nil {
			s.walAppendErrors.Inc()
			s.readonly.Set(1)
			return fmt.Errorf("%w: %v", ErrReadOnly, err)
		}
		s.walAppends.Inc()
		// Clear the read-only latch only when it is actually set: an
		// unconditional store would bounce the gauge's cacheline between
		// every observing core.
		if s.readonly.Value() != 0 {
			s.readonly.Set(0)
		}
	}
	st.applyLocked(waitSeconds, seq, true)
	return nil
}

// applyLocked folds a wait into the forecaster. scoreHit is false on the
// replay path: recovered observations update predictor state exactly as
// they did in the crashed process, but the rolling correctness monitor
// only scores quotes this process actually made (the same rule snapshot
// restore follows).
func (st *stream) applyLocked(waitSeconds float64, seq uint64, scoreHit bool) {
	if scoreHit {
		if bound, ok := st.fc.Forecast(); ok {
			st.hit.Record(waitSeconds <= bound)
		}
	}
	st.fc.Observe(waitSeconds)
	st.fc.Forecast() // eager refit: read paths must never find a stale bound
	if seq > st.lastSeq {
		st.lastSeq = seq
	}
	if tr := st.fc.ChangePoints(); tr != st.trimsSeen {
		st.trimsSeen = tr
		st.lastTrimUnix = time.Now().Unix()
	}
}

// applyGroupLocked folds one batch group into the forecaster under the
// single write-lock acquisition ObserveBatch already holds. Each wait is
// still scored against the bound quoted at its arrival — the correctness
// monitor and the predictor's own change-point scoring are per-record by
// definition, so final state depends only on the wait sequence, not on how
// it was batched — but the trailing settle, lastSeq advance, and trim
// bookkeeping run once per group instead of once per record. lastSeq is
// the sequence number of the group's newest record (0 without a WAL).
func (st *stream) applyGroupLocked(chunk []ObserveRecord, idxs []int32, lastSeq uint64) {
	for _, idx := range idxs {
		w := chunk[idx].WaitSeconds
		if bound, ok := st.fc.Forecast(); ok {
			st.hit.Record(w <= bound)
		}
		st.fc.Observe(w)
	}
	st.fc.Forecast() // eager refit: read paths must never find a stale bound
	if lastSeq > st.lastSeq {
		st.lastSeq = lastSeq
	}
	if tr := st.fc.ChangePoints(); tr != st.trimsSeen {
		st.trimsSeen = tr
		st.lastTrimUnix = time.Now().Unix()
	}
}

// replayGroupLocked is applyGroupLocked's recovery-path sibling: recovered
// records at or below the stream's snapshot anchor are skipped, quotes are
// not scored (this process never made them), and the forecaster settles
// once per group — which is what makes batched replay measurably faster
// than the record-at-a-time path on a long log tail.
func (st *stream) replayGroupLocked(waits []float64, seqs []uint64) {
	applied := false
	for i, seq := range seqs {
		if seq <= st.lastSeq {
			continue
		}
		st.fc.Observe(waits[i])
		st.lastSeq = seq
		applied = true
	}
	if !applied {
		return
	}
	st.fc.Forecast()
	if tr := st.fc.ChangePoints(); tr != st.trimsSeen {
		st.trimsSeen = tr
		st.lastTrimUnix = time.Now().Unix()
	}
}

// BatchError reports a batch that was refused or cut short at a specific
// record: records before Index were applied (and are durable under the
// WAL's sync policy), records at and after it were not. Err carries the
// cause — errors.Is(err, ErrReadOnly) means the observation log stopped
// taking appends mid-batch and the client should retry the remainder after
// the Retry-After interval; ErrInvalidWait means the batch was rejected up
// front without applying anything.
type BatchError struct {
	Index int
	Err   error
}

func (e *BatchError) Error() string { return fmt.Sprintf("record %d: %v", e.Index, e.Err) }
func (e *BatchError) Unwrap() error { return e.Err }

// observeBatchChunk is how many records one WAL append — and, under
// sync=always, one fsync — covers. It bounds how much work a single
// multi-stream lock hold can pin and is the granularity of partial
// failure: a batch dies on a chunk boundary, so ObserveBatch's applied
// count is exact.
const observeBatchChunk = 256

// batchGroup is one (queue, category) run within a chunk: the indices of
// the chunk's records that route to one stream.
type batchGroup struct {
	queue string
	slot  int
	st    *stream
	idxs  []int32
}

// batchScratch is the pooled working state of one ObserveBatch call; the
// ingest hot path reuses it so batch grouping allocates nothing in steady
// state.
type batchScratch struct {
	groups  []batchGroup
	entries []wal.Entry
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// release returns the scratch to the pool with anything that could pin
// request memory cleared; group index slices keep their capacity.
func (sc *batchScratch) release() {
	for i := range sc.groups {
		sc.groups[i].queue, sc.groups[i].st = "", nil
	}
	clear(sc.entries)
	batchScratchPool.Put(sc)
}

// ObserveBatch records a batch of completed waits, amortizing the write
// path: records are grouped by stream, each chunk is appended to the WAL
// as one batch (one fsync under sync=always, against one per record for
// the loop-over-Observe equivalent), and each stream's group is applied
// under a single lock acquisition. Final predictor state is identical to
// calling Observe once per record in order.
//
// On success it returns (len(records), nil). A record that cannot be a
// queue delay rejects the whole batch up front — (0, *BatchError wrapping
// ErrInvalidWait) — applying nothing. If the observation log stops taking
// appends partway through, every record before the returned count was
// applied and durable, no later record was, and the *BatchError (wrapping
// ErrReadOnly) carries the index of the first unapplied record so the
// client can retry exactly the remainder.
func (s *Service) ObserveBatch(records []ObserveRecord) (applied int, err error) {
	for i := range records {
		w := records[i].WaitSeconds
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return 0, &BatchError{Index: i, Err: ErrInvalidWait}
		}
	}
	if len(records) == 0 {
		return 0, nil
	}
	sc := batchScratchPool.Get().(*batchScratch)
	defer sc.release()
	for base := 0; base < len(records); base += observeBatchChunk {
		end := min(base+observeBatchChunk, len(records))
		if cerr := s.observeChunk(records[base:end], sc); cerr != nil {
			return base, &BatchError{Index: base, Err: cerr}
		}
		applied = end
	}
	return applied, nil
}

// observeChunk groups, logs, and applies one chunk. The chunk is atomic:
// either every record is appended (one AppendBatch) and applied, or none
// is. All affected stream write locks are held, in key order, across
// append-then-apply — the same invariant the single-record path keeps, so
// a concurrent snapshot's (state, lastSeq) view stays consistent and
// compaction can never delete a segment whose records some stream has not
// yet folded in.
func (s *Service) observeChunk(chunk []ObserveRecord, sc *batchScratch) error {
	byProcs := s.byProcs.Load()
	groups := sc.groups[:0]
	for i := range chunk {
		slot := cacheSlotWhole
		if byProcs {
			slot = int(CategoryOf(chunk[i].Procs))
		}
		gi := 0
		for ; gi < len(groups); gi++ {
			if groups[gi].slot == slot && groups[gi].queue == chunk[i].Queue {
				groups[gi].idxs = append(groups[gi].idxs, int32(i))
				break
			}
		}
		if gi == len(groups) {
			if len(groups) < cap(groups) {
				groups = groups[:gi+1]
				g := &groups[gi]
				g.queue, g.slot, g.st, g.idxs = chunk[i].Queue, slot, nil, append(g.idxs[:0], int32(i))
			} else {
				groups = append(groups, batchGroup{queue: chunk[i].Queue, slot: slot, idxs: []int32{int32(i)}})
			}
		}
	}
	sc.groups = groups
	for gi := range groups {
		groups[gi].st = s.streamForSlot(groups[gi].queue, groups[gi].slot)
	}
	// Distinct (queue, slot) pairs resolve to distinct streams (the slot
	// set is fixed for the chunk), so sorting by key gives a strict global
	// lock order — concurrent batches cannot deadlock.
	slices.SortFunc(groups, func(a, b batchGroup) int { return strings.Compare(a.st.key, b.st.key) })
	for gi := range groups {
		groups[gi].st.mu.Lock()
	}
	defer func() {
		for gi := range groups {
			groups[gi].st.mu.Unlock()
		}
	}()
	if s.wal == nil {
		for gi := range groups {
			groups[gi].st.applyGroupLocked(chunk, groups[gi].idxs, 0)
		}
		return nil
	}
	entries := sc.entries[:0]
	if cap(entries) < len(chunk) {
		entries = make([]wal.Entry, 0, observeBatchChunk)
	}
	entries = entries[:len(chunk)]
	now := s.wal.CoarseUnixNanos()
	for gi := range groups {
		g := &groups[gi]
		for _, idx := range g.idxs {
			entries[idx] = wal.Entry{Key: g.st.key, Wait: chunk[idx].WaitSeconds, UnixNanos: now}
		}
	}
	sc.entries = entries
	firstSeq, werr := s.wal.AppendBatch(entries)
	if werr != nil {
		s.walAppendErrors.Inc()
		s.readonly.Set(1)
		return fmt.Errorf("%w: %v", ErrReadOnly, werr)
	}
	s.walAppends.Add(uint64(len(chunk)))
	if s.readonly.Value() != 0 {
		s.readonly.Set(0)
	}
	for gi := range groups {
		g := &groups[gi]
		g.st.applyGroupLocked(chunk, g.idxs, firstSeq+uint64(g.idxs[len(g.idxs)-1]))
	}
	return nil
}

func (st *stream) status(q, c float64) StreamStatus {
	st.mu.RLock()
	defer st.mu.RUnlock()
	bound, ok := st.fc.Forecast()
	rate, n := st.hit.Rate()
	hits, total := st.hit.Lifetime()
	return StreamStatus{
		Stream:           st.key,
		Observations:     st.fc.Observations(),
		MinObservations:  st.fc.MinObservations(),
		BoundSeconds:     bound,
		BoundOK:          ok,
		RollingHitRate:   rate,
		RollingResolved:  n,
		LifetimeHits:     hits,
		LifetimeResolved: total,
		Trims:            st.fc.ChangePoints(),
		LastTrimUnix:     st.lastTrimUnix,
		TargetQuantile:   q,
		TargetConfidence: c,
	}
}

// Observe records a completed wait for a queue and processor count. It
// returns ErrInvalidWait for waits that cannot be queue delays (NaN, Inf,
// negative) and ErrReadOnly (wrapped, with the cause) when a write-ahead
// log is attached and the append failed — in that case the observation was
// NOT recorded, by design: refusing is recoverable, silent loss is not.
func (s *Service) Observe(queue string, procs int, waitSeconds float64) error {
	if math.IsNaN(waitSeconds) || math.IsInf(waitSeconds, 0) || waitSeconds < 0 {
		return ErrInvalidWait
	}
	return s.streamFor(queue, procs).observe(s, waitSeconds)
}

// Forecast returns the bound a job with the given shape would be quoted.
// ok is false when the stream is unknown or its history is too short;
// asking about a never-observed shape does not create a stream.
func (s *Service) Forecast(queue string, procs int) (seconds float64, ok bool) {
	st := s.lookup(s.key(queue, procs))
	if st == nil {
		return 0, false
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.fc.Forecast()
}

// Profile returns the Table 8 quantile profile for a job shape, or nil if
// the stream is unknown.
func (s *Service) Profile(queue string, procs int) []Bound {
	st := s.lookup(s.key(queue, procs))
	if st == nil {
		return nil
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.fc.Profile()
}

// Observations returns the history length behind a job shape's stream
// (0 for unknown streams).
func (s *Service) Observations(queue string, procs int) int {
	st := s.lookup(s.key(queue, procs))
	if st == nil {
		return 0
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.fc.Observations()
}

// Queues lists the streams the service currently tracks (unordered).
func (s *Service) Queues() []string {
	out := make([]string, 0, s.nStreams.Load())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.m {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	return out
}

// NumStreams returns how many streams the service tracks.
func (s *Service) NumStreams() int { return int(s.nStreams.Load()) }

// StreamStats returns the status snapshot for one job shape. ok is false
// for unknown streams.
func (s *Service) StreamStats(queue string, procs int) (StreamStatus, bool) {
	st := s.lookup(s.key(queue, procs))
	if st == nil {
		return StreamStatus{}, false
	}
	return st.status(s.quantile, s.confidence), true
}

// Stats returns status snapshots for every stream (unordered; callers that
// display them sort by Stream).
func (s *Service) Stats() []StreamStatus {
	out := make([]StreamStatus, 0, s.nStreams.Load())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		streams := make([]*stream, 0, len(sh.m))
		for _, st := range sh.m {
			streams = append(streams, st)
		}
		sh.mu.RUnlock()
		// Take per-stream locks outside the shard lock so a slow stream
		// cannot stall unrelated creations in its shard.
		for _, st := range streams {
			out = append(out, st.status(s.quantile, s.confidence))
		}
	}
	return out
}

// replaceStreams swaps in a freshly restored stream set (state.go). Shard
// locks are taken in index order, so concurrent replaceStreams calls
// cannot deadlock; readers mid-flight keep operating on streams from the
// old set, which matches wholesale-restore semantics.
func (s *Service) replaceStreams(streams map[string]*stream) {
	var n int64
	var grouped [serviceShards]map[string]*stream
	for i := range grouped {
		grouped[i] = make(map[string]*stream)
	}
	for k, st := range streams {
		grouped[shardOf(k)][k] = st
		n++
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.m = grouped[i]
		sh.mu.Unlock()
	}
	s.nStreams.Store(n)
	// Drop the hot-path cache: every cached *stream belongs to the old set.
	// The generation bump also stops in-flight streamForSlot calls from
	// re-inserting old-set streams they resolved before the swap.
	s.scache.mu.Lock()
	s.scache.gen++
	s.scache.m = make(map[string]*[cacheSlotWhole + 1]*stream)
	s.scache.mu.Unlock()
}

// RecoverWAL replays w's surviving records on top of the service's current
// state — typically a freshly restored snapshot — and attaches w so every
// subsequent Observe is logged before it mutates a stream. Records a
// stream's snapshot already covers (sequence number at or below the
// stream's persisted lastSeq) are skipped, so the merge is exact: each
// observation lands exactly once whatever the crash timing. Torn or
// corrupt log tails are tolerated (truncated and counted, never fatal).
//
// RecoverWAL must be called once, before the service takes traffic.
//
// Replay goes through the batch-apply path: records are buffered, grouped
// by stream, and folded in one lock acquisition and one settle per group —
// within a stream the log's order is preserved exactly, and streams are
// independent, so recovered state matches record-at-a-time replay.
func (s *Service) RecoverWAL(w *wal.WAL) (wal.ReplayStats, error) {
	const replayFlushEvery = 1024
	type pendingGroup struct {
		st    *stream
		waits []float64
		seqs  []uint64
	}
	pending := make(map[*stream]*pendingGroup)
	buffered := 0
	flush := func() {
		for _, p := range pending {
			p.st.mu.Lock()
			p.st.replayGroupLocked(p.waits, p.seqs)
			p.st.mu.Unlock()
		}
		clear(pending)
		buffered = 0
	}
	stats, err := w.Replay(func(r wal.Record) {
		st := s.getOrCreate(r.Key)
		p := pending[st]
		if p == nil {
			p = &pendingGroup{st: st}
			pending[st] = p
		}
		p.waits = append(p.waits, r.Wait)
		p.seqs = append(p.seqs, r.Seq)
		if buffered++; buffered >= replayFlushEvery {
			flush()
		}
	})
	flush()
	if err != nil {
		return stats, err
	}
	s.wal = w
	s.walReplayed.Add(uint64(stats.Records))
	s.walReplayDropped.Add(uint64(stats.Truncations))
	s.walReplayDroppedB.Add(uint64(stats.DroppedBytes))
	return stats, nil
}

// ReadOnly reports whether the service is currently refusing observations
// because WAL appends are failing (see ErrReadOnly).
func (s *Service) ReadOnly() bool { return s.readonly.Value() != 0 }

// DurabilityStats is a snapshot of the service's durability counters.
type DurabilityStats struct {
	// WALAttached is true when observations are logged before being applied.
	WALAttached bool
	// ReadOnly mirrors Service.ReadOnly.
	ReadOnly bool
	// Appends / AppendErrors count WAL appends since process start.
	Appends, AppendErrors uint64
	// ReplayedRecords is how many log records startup recovery applied or
	// skipped as already-snapshotted; ReplayTruncations / ReplayDroppedBytes
	// describe the torn or corrupt tails recovery discarded.
	ReplayedRecords, ReplayTruncations, ReplayDroppedBytes uint64
	// CompactionErrors counts failed best-effort segment deletions after
	// snapshots (the snapshot itself succeeded; the log is just longer
	// than it needs to be).
	CompactionErrors uint64
}

// Durability returns the service's durability counters.
func (s *Service) Durability() DurabilityStats {
	return DurabilityStats{
		WALAttached:        s.wal != nil,
		ReadOnly:           s.ReadOnly(),
		Appends:            s.walAppends.Value(),
		AppendErrors:       s.walAppendErrors.Value(),
		ReplayedRecords:    s.walReplayed.Value(),
		ReplayTruncations:  s.walReplayDropped.Value(),
		ReplayDroppedBytes: s.walReplayDroppedB.Value(),
		CompactionErrors:   s.walCompactErrors.Value(),
	}
}

// durabilityMetricRefs hands the server pointers to the service-owned
// durability counters so it can expose them on /metrics without mirroring.
type durabilityMetricRefs struct {
	readonly                                                       *obs.Gauge
	appends, appendErrors, replayed, replayDropped, replayDroppedB *obs.Counter
	compactErrors                                                  *obs.Counter
}

func (s *Service) durabilityMetrics() durabilityMetricRefs {
	return durabilityMetricRefs{
		readonly:       &s.readonly,
		appends:        &s.walAppends,
		appendErrors:   &s.walAppendErrors,
		replayed:       &s.walReplayed,
		replayDropped:  &s.walReplayDropped,
		replayDroppedB: &s.walReplayDroppedB,
		compactErrors:  &s.walCompactErrors,
	}
}

// snapshotStreams returns the current stream set (state.go's save path).
func (s *Service) snapshotStreams() map[string]*stream {
	out := make(map[string]*stream, s.nStreams.Load())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, st := range sh.m {
			out[k] = st
		}
		sh.mu.RUnlock()
	}
	return out
}
