package qbets

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wal"
)

// Service manages one Forecaster per (queue, processor category), the
// deployment shape the paper's Section 6.2 evaluates: users ask "how long
// would a 32-processor job submitted to normal wait, at worst?".
//
// Service is safe for concurrent use and designed so traffic on distinct
// streams never contends: streams live in a fixed array of lock-striped
// shards (hashed by stream key), and each stream carries its own RWMutex.
// Observes take the stream's write lock; forecasts, profiles, and status
// reads take its read lock, which is sound because the write path refits
// the bound eagerly — read paths never mutate forecaster state.
//
// Each stream also self-monitors the paper's correctness metric online:
// every observation whose wait can be compared against the bound quoted at
// its arrival is a resolved prediction, and the rolling fraction of hits
// (wait <= quoted bound) is tracked against the target confidence — the
// live analogue of the "correct %" columns of Tables 3–7.
type Service struct {
	opts       []Option
	byProcs    atomic.Bool
	quantile   float64
	confidence float64

	shards   [serviceShards]serviceShard
	nStreams atomic.Int64
	nextSeed atomic.Int64

	// Durability. wal is attached once by RecoverWAL before traffic and
	// never changes; nil means observations are held in memory between
	// snapshots, the pre-WAL behavior. readonly is 1 while log appends are
	// failing (observes are refused rather than silently losing data) and
	// self-heals on the next successful append. The counters feed the
	// server's /metrics.
	wal               *wal.WAL
	readonly          obs.Gauge
	walAppends        obs.Counter
	walAppendErrors   obs.Counter
	walReplayed       obs.Counter
	walReplayDropped  obs.Counter // replay truncation events (torn/corrupt tails)
	walReplayDroppedB obs.Counter // bytes discarded by those truncations
	walCompactErrors  obs.Counter
}

// ErrInvalidWait rejects observations whose wait is NaN, infinite, or
// negative — none of which can be a queue delay, and any of which would
// poison the order statistics every future bound is computed from.
var ErrInvalidWait = errors.New("qbets: wait_seconds must be finite and non-negative")

// ErrReadOnly reports that the service is refusing observations because
// write-ahead-log appends are failing: accepting an observation it cannot
// make durable would silently violate the crash-safety contract. Forecasts
// and status reads keep working; the mode clears itself as soon as an
// append succeeds again.
var ErrReadOnly = errors.New("qbets: read-only: observation log appends are failing")

const serviceShards = 64

// hitRateWindow is the number of resolved predictions the rolling
// correctness estimate covers. Around 500 the binomial noise on the rate
// (±2σ ≈ 0.02 at C = 0.95) is small against the 0.05 slack the paper's
// tables examine, while the window still reacts to regime changes within
// a few hundred jobs.
const hitRateWindow = 500

type serviceShard struct {
	mu sync.RWMutex
	m  map[string]*stream
}

// stream couples one Forecaster with its own lock and monitoring state.
type stream struct {
	key string
	mu  sync.RWMutex
	fc  *Forecaster
	hit *obs.RollingRate

	// Trim tracking (guarded by mu): trimsSeen mirrors fc.ChangePoints()
	// after each observe so the wall-clock time of the latest trim can be
	// recorded as it happens.
	trimsSeen    int
	lastTrimUnix int64

	// lastSeq (guarded by mu) is the WAL sequence number of the newest
	// observation folded into fc — 0 before any logged observation. It is
	// serialized with the stream, which is what makes snapshot + log-tail
	// recovery exact: replay skips records at or below it, so nothing is
	// double-applied and nothing is lost.
	lastSeq uint64
}

// StreamStatus is a point-in-time snapshot of one stream's state and
// self-monitoring metrics.
type StreamStatus struct {
	// Stream is the registry key ("queue" or "queue/bucket").
	Stream string
	// Observations and MinObservations report history depth vs. the
	// minimum needed for a bound.
	Observations    int
	MinObservations int
	// BoundSeconds is the current bound (valid when BoundOK).
	BoundSeconds float64
	BoundOK      bool
	// RollingHitRate is the fraction of the last RollingResolved resolved
	// predictions whose wait fell within the quoted bound; the paper's
	// correctness metric, computed online. Compare against
	// TargetConfidence: a healthy stream sits at or above it.
	RollingHitRate  float64
	RollingResolved int
	// LifetimeHits / LifetimeResolved are totals since stream creation.
	LifetimeHits     uint64
	LifetimeResolved uint64
	// Trims counts change-point events; LastTrimUnix is the wall-clock
	// second of the most recent one (0 if none).
	Trims        int
	LastTrimUnix int64
	// TargetQuantile / TargetConfidence echo the service configuration.
	TargetQuantile   float64
	TargetConfidence float64
}

// NewService returns an empty Service. splitByProcs selects whether each
// queue is modeled as one stream or as four per-category streams.
func NewService(splitByProcs bool, opts ...Option) *Service {
	c := config{quantile: 0.95, confidence: 0.95}
	for _, o := range opts {
		o(&c)
	}
	s := &Service{opts: opts, quantile: c.quantile, confidence: c.confidence}
	s.byProcs.Store(splitByProcs)
	for i := range s.shards {
		s.shards[i].m = make(map[string]*stream)
	}
	return s
}

// Quantile returns the resolved quantile streams are configured with.
func (s *Service) Quantile() float64 { return s.quantile }

// Confidence returns the resolved confidence level streams are configured
// with.
func (s *Service) Confidence() float64 { return s.confidence }

func (s *Service) key(queue string, procs int) string {
	if !s.byProcs.Load() {
		return queue
	}
	return queue + "/" + CategoryOf(procs).Label()
}

// shardOf hashes a stream key to its shard (FNV-1a).
func shardOf(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h % serviceShards
}

// lookup returns the stream for a key without creating it.
func (s *Service) lookup(key string) *stream {
	sh := &s.shards[shardOf(key)]
	sh.mu.RLock()
	st := sh.m[key]
	sh.mu.RUnlock()
	return st
}

// getOrCreate returns the stream for a key, creating it on first use.
func (s *Service) getOrCreate(key string) *stream {
	if st := s.lookup(key); st != nil {
		return st
	}
	sh := &s.shards[shardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if st := sh.m[key]; st != nil {
		return st
	}
	st := s.newStream(key)
	sh.m[key] = st
	s.nStreams.Add(1)
	return st
}

// newStream builds a settled stream: the forecaster's lazily-computed
// bound is materialized up front so read paths stay mutation-free.
func (s *Service) newStream(key string) *stream {
	seed := s.nextSeed.Add(1) - 1
	opts := append([]Option{WithSeed(seed)}, s.opts...)
	fc := New(opts...)
	fc.Forecast()
	return &stream{key: key, fc: fc, hit: obs.NewRollingRate(hitRateWindow)}
}

// adoptStream wraps a restored forecaster (state.go's restore path).
// lastSeq is the WAL sequence number the snapshot covers for this stream.
func adoptStream(key string, fc *Forecaster, lastSeq uint64) *stream {
	fc.Forecast() // settle the lazy refit before concurrent reads start
	return &stream{key: key, fc: fc, hit: obs.NewRollingRate(hitRateWindow), trimsSeen: fc.ChangePoints(), lastSeq: lastSeq}
}

// observe records a wait under the stream's write lock: the observation is
// appended to the service's WAL first (if one is attached), then folded
// into the forecaster, scoring the bound the arriving job would have been
// quoted and keeping the bound fresh. Holding the write lock across
// append-then-apply is what keeps (forecaster state, lastSeq) consistent —
// a snapshot taken concurrently sees either both effects or neither.
func (st *stream) observe(s *Service, waitSeconds float64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	var seq uint64
	if s.wal != nil {
		var err error
		// Records carry the WAL's coarse clock (exact to the last sync):
		// the timestamp is forensic — recovery replays by sequence, not
		// time — and a per-observe time syscall is the hot path's single
		// largest avoidable cost.
		seq, err = s.wal.Append(st.key, waitSeconds, s.wal.CoarseUnixNanos())
		if err != nil {
			s.walAppendErrors.Inc()
			s.readonly.Set(1)
			return fmt.Errorf("%w: %v", ErrReadOnly, err)
		}
		s.walAppends.Inc()
		// Clear the read-only latch only when it is actually set: an
		// unconditional store would bounce the gauge's cacheline between
		// every observing core.
		if s.readonly.Value() != 0 {
			s.readonly.Set(0)
		}
	}
	st.applyLocked(waitSeconds, seq, true)
	return nil
}

// applyLocked folds a wait into the forecaster. scoreHit is false on the
// replay path: recovered observations update predictor state exactly as
// they did in the crashed process, but the rolling correctness monitor
// only scores quotes this process actually made (the same rule snapshot
// restore follows).
func (st *stream) applyLocked(waitSeconds float64, seq uint64, scoreHit bool) {
	if scoreHit {
		if bound, ok := st.fc.Forecast(); ok {
			st.hit.Record(waitSeconds <= bound)
		}
	}
	st.fc.Observe(waitSeconds)
	st.fc.Forecast() // eager refit: read paths must never find a stale bound
	if seq > st.lastSeq {
		st.lastSeq = seq
	}
	if tr := st.fc.ChangePoints(); tr != st.trimsSeen {
		st.trimsSeen = tr
		st.lastTrimUnix = time.Now().Unix()
	}
}

func (st *stream) status(q, c float64) StreamStatus {
	st.mu.RLock()
	defer st.mu.RUnlock()
	bound, ok := st.fc.Forecast()
	rate, n := st.hit.Rate()
	hits, total := st.hit.Lifetime()
	return StreamStatus{
		Stream:           st.key,
		Observations:     st.fc.Observations(),
		MinObservations:  st.fc.MinObservations(),
		BoundSeconds:     bound,
		BoundOK:          ok,
		RollingHitRate:   rate,
		RollingResolved:  n,
		LifetimeHits:     hits,
		LifetimeResolved: total,
		Trims:            st.fc.ChangePoints(),
		LastTrimUnix:     st.lastTrimUnix,
		TargetQuantile:   q,
		TargetConfidence: c,
	}
}

// Observe records a completed wait for a queue and processor count. It
// returns ErrInvalidWait for waits that cannot be queue delays (NaN, Inf,
// negative) and ErrReadOnly (wrapped, with the cause) when a write-ahead
// log is attached and the append failed — in that case the observation was
// NOT recorded, by design: refusing is recoverable, silent loss is not.
func (s *Service) Observe(queue string, procs int, waitSeconds float64) error {
	if math.IsNaN(waitSeconds) || math.IsInf(waitSeconds, 0) || waitSeconds < 0 {
		return ErrInvalidWait
	}
	return s.getOrCreate(s.key(queue, procs)).observe(s, waitSeconds)
}

// Forecast returns the bound a job with the given shape would be quoted.
// ok is false when the stream is unknown or its history is too short;
// asking about a never-observed shape does not create a stream.
func (s *Service) Forecast(queue string, procs int) (seconds float64, ok bool) {
	st := s.lookup(s.key(queue, procs))
	if st == nil {
		return 0, false
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.fc.Forecast()
}

// Profile returns the Table 8 quantile profile for a job shape, or nil if
// the stream is unknown.
func (s *Service) Profile(queue string, procs int) []Bound {
	st := s.lookup(s.key(queue, procs))
	if st == nil {
		return nil
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.fc.Profile()
}

// Observations returns the history length behind a job shape's stream
// (0 for unknown streams).
func (s *Service) Observations(queue string, procs int) int {
	st := s.lookup(s.key(queue, procs))
	if st == nil {
		return 0
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.fc.Observations()
}

// Queues lists the streams the service currently tracks (unordered).
func (s *Service) Queues() []string {
	out := make([]string, 0, s.nStreams.Load())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.m {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	return out
}

// NumStreams returns how many streams the service tracks.
func (s *Service) NumStreams() int { return int(s.nStreams.Load()) }

// StreamStats returns the status snapshot for one job shape. ok is false
// for unknown streams.
func (s *Service) StreamStats(queue string, procs int) (StreamStatus, bool) {
	st := s.lookup(s.key(queue, procs))
	if st == nil {
		return StreamStatus{}, false
	}
	return st.status(s.quantile, s.confidence), true
}

// Stats returns status snapshots for every stream (unordered; callers that
// display them sort by Stream).
func (s *Service) Stats() []StreamStatus {
	out := make([]StreamStatus, 0, s.nStreams.Load())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		streams := make([]*stream, 0, len(sh.m))
		for _, st := range sh.m {
			streams = append(streams, st)
		}
		sh.mu.RUnlock()
		// Take per-stream locks outside the shard lock so a slow stream
		// cannot stall unrelated creations in its shard.
		for _, st := range streams {
			out = append(out, st.status(s.quantile, s.confidence))
		}
	}
	return out
}

// replaceStreams swaps in a freshly restored stream set (state.go). Shard
// locks are taken in index order, so concurrent replaceStreams calls
// cannot deadlock; readers mid-flight keep operating on streams from the
// old set, which matches wholesale-restore semantics.
func (s *Service) replaceStreams(streams map[string]*stream) {
	var n int64
	var grouped [serviceShards]map[string]*stream
	for i := range grouped {
		grouped[i] = make(map[string]*stream)
	}
	for k, st := range streams {
		grouped[shardOf(k)][k] = st
		n++
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.m = grouped[i]
		sh.mu.Unlock()
	}
	s.nStreams.Store(n)
}

// RecoverWAL replays w's surviving records on top of the service's current
// state — typically a freshly restored snapshot — and attaches w so every
// subsequent Observe is logged before it mutates a stream. Records a
// stream's snapshot already covers (sequence number at or below the
// stream's persisted lastSeq) are skipped, so the merge is exact: each
// observation lands exactly once whatever the crash timing. Torn or
// corrupt log tails are tolerated (truncated and counted, never fatal).
//
// RecoverWAL must be called once, before the service takes traffic.
func (s *Service) RecoverWAL(w *wal.WAL) (wal.ReplayStats, error) {
	stats, err := w.Replay(func(r wal.Record) {
		st := s.getOrCreate(r.Key)
		st.mu.Lock()
		if r.Seq > st.lastSeq {
			st.applyLocked(r.Wait, r.Seq, false)
		}
		st.mu.Unlock()
	})
	if err != nil {
		return stats, err
	}
	s.wal = w
	s.walReplayed.Add(uint64(stats.Records))
	s.walReplayDropped.Add(uint64(stats.Truncations))
	s.walReplayDroppedB.Add(uint64(stats.DroppedBytes))
	return stats, nil
}

// ReadOnly reports whether the service is currently refusing observations
// because WAL appends are failing (see ErrReadOnly).
func (s *Service) ReadOnly() bool { return s.readonly.Value() != 0 }

// DurabilityStats is a snapshot of the service's durability counters.
type DurabilityStats struct {
	// WALAttached is true when observations are logged before being applied.
	WALAttached bool
	// ReadOnly mirrors Service.ReadOnly.
	ReadOnly bool
	// Appends / AppendErrors count WAL appends since process start.
	Appends, AppendErrors uint64
	// ReplayedRecords is how many log records startup recovery applied or
	// skipped as already-snapshotted; ReplayTruncations / ReplayDroppedBytes
	// describe the torn or corrupt tails recovery discarded.
	ReplayedRecords, ReplayTruncations, ReplayDroppedBytes uint64
	// CompactionErrors counts failed best-effort segment deletions after
	// snapshots (the snapshot itself succeeded; the log is just longer
	// than it needs to be).
	CompactionErrors uint64
}

// Durability returns the service's durability counters.
func (s *Service) Durability() DurabilityStats {
	return DurabilityStats{
		WALAttached:        s.wal != nil,
		ReadOnly:           s.ReadOnly(),
		Appends:            s.walAppends.Value(),
		AppendErrors:       s.walAppendErrors.Value(),
		ReplayedRecords:    s.walReplayed.Value(),
		ReplayTruncations:  s.walReplayDropped.Value(),
		ReplayDroppedBytes: s.walReplayDroppedB.Value(),
		CompactionErrors:   s.walCompactErrors.Value(),
	}
}

// durabilityMetricRefs hands the server pointers to the service-owned
// durability counters so it can expose them on /metrics without mirroring.
type durabilityMetricRefs struct {
	readonly                                                       *obs.Gauge
	appends, appendErrors, replayed, replayDropped, replayDroppedB *obs.Counter
	compactErrors                                                  *obs.Counter
}

func (s *Service) durabilityMetrics() durabilityMetricRefs {
	return durabilityMetricRefs{
		readonly:       &s.readonly,
		appends:        &s.walAppends,
		appendErrors:   &s.walAppendErrors,
		replayed:       &s.walReplayed,
		replayDropped:  &s.walReplayDropped,
		replayDroppedB: &s.walReplayDroppedB,
		compactErrors:  &s.walCompactErrors,
	}
}

// snapshotStreams returns the current stream set (state.go's save path).
func (s *Service) snapshotStreams() map[string]*stream {
	out := make(map[string]*stream, s.nStreams.Load())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, st := range sh.m {
			out[k] = st
		}
		sh.mu.RUnlock()
	}
	return out
}
