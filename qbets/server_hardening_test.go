package qbets

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/wal"
)

func postObserve(t *testing.T, srv http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/observe", strings.NewReader(body))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

func TestObserveRejectsOversizedBody(t *testing.T) {
	srv := NewServer(false, WithSeed(1))
	// A syntactically valid batch just over the cap: the limit, not the JSON
	// parser, must be what rejects it.
	var sb bytes.Buffer
	sb.WriteByte('[')
	rec := `{"queue":"normal","procs":8,"wait_seconds":123.456}`
	for sb.Len() <= maxObserveBody {
		if sb.Len() > 1 {
			sb.WriteByte(',')
		}
		sb.WriteString(rec)
	}
	sb.WriteByte(']')

	w := postObserve(t, srv, sb.String())
	if w.Code != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d, want 400", w.Code)
	}
	var er ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || !strings.Contains(er.Error, "exceeds") {
		t.Fatalf("oversized body error = %q, %v", er.Error, err)
	}
	if srv.Service().NumStreams() != 0 {
		t.Fatal("oversized batch partially ingested")
	}

	// Just under the cap is fine.
	small := fmt.Sprintf("[%s]", rec)
	if w := postObserve(t, srv, small); w.Code != http.StatusNoContent {
		t.Fatalf("small body: status %d, want 204", w.Code)
	}
}

func TestObserveRejectsNonFiniteWaits(t *testing.T) {
	// The HTTP layer: JSON cannot carry NaN/Inf literals, so they surface as
	// parse errors; negative and overflowing values must be 400s too.
	srv := NewServer(false, WithSeed(1))
	for _, body := range []string{
		`{"queue":"q","wait_seconds":-1}`,
		`{"queue":"q","wait_seconds":NaN}`,
		`{"queue":"q","wait_seconds":1e999}`,
		`[{"queue":"q","wait_seconds":1},{"queue":"q","wait_seconds":-0.5}]`,
	} {
		if w := postObserve(t, srv, body); w.Code != http.StatusBadRequest {
			t.Errorf("payload %s: status %d, want 400", body, w.Code)
		}
	}
	if srv.Service().NumStreams() != 0 {
		t.Fatal("invalid payload created streams")
	}

	// The Service layer rejects the same values uniformly, so a non-HTTP
	// caller cannot poison the order statistics either.
	svc := NewService(false, WithSeed(1))
	for _, wait := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1} {
		if err := svc.Observe("q", 1, wait); !errors.Is(err, ErrInvalidWait) {
			t.Errorf("Observe(%g) = %v, want ErrInvalidWait", wait, err)
		}
	}
	if svc.NumStreams() != 0 {
		t.Fatal("invalid wait created a stream")
	}
}

func TestServerReadOnlyReturns503(t *testing.T) {
	fs := wal.NewFaultFS(wal.NewMemFS())
	w, err := wal.Open("wal", wal.Options{FS: fs, Mode: wal.SyncEachRecord})
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(false, WithSeed(1))
	if _, err := svc.RecoverWAL(w); err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith(svc)

	if rr := postObserve(t, srv, `{"queue":"q","wait_seconds":10}`); rr.Code != http.StatusNoContent {
		t.Fatalf("healthy observe: status %d", rr.Code)
	}

	fs.FailWritesAfter(0, errors.New("disk full"), false)
	rr := postObserve(t, srv, `{"queue":"q","wait_seconds":11}`)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("read-only observe: status %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// Forecasts degrade gracefully: still served while observes are refused.
	req := httptest.NewRequest(http.MethodGet, "/v1/forecast?queue=q", nil)
	fw := httptest.NewRecorder()
	srv.ServeHTTP(fw, req)
	if fw.Code != http.StatusOK {
		t.Fatalf("forecast during read-only: status %d", fw.Code)
	}

	// The gauge is visible on /metrics while degraded.
	mw := httptest.NewRecorder()
	srv.ServeHTTP(mw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(mw.Body.String(), "qbets_readonly 1") {
		t.Fatal("metrics missing qbets_readonly 1 while degraded")
	}

	fs.Clear()
	if rr := postObserve(t, srv, `{"queue":"q","wait_seconds":12}`); rr.Code != http.StatusNoContent {
		t.Fatalf("observe after heal: status %d", rr.Code)
	}
	mw = httptest.NewRecorder()
	srv.ServeHTTP(mw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := mw.Body.String()
	if !strings.Contains(body, "qbets_readonly 0") {
		t.Fatal("metrics missing qbets_readonly 0 after heal")
	}
	for _, name := range []string{
		"qbets_wal_appends_total",
		"qbets_wal_append_errors_total",
		"qbets_wal_replayed_records_total",
		"qbets_wal_replay_dropped_total",
		"qbets_wal_replay_dropped_bytes_total",
		"qbets_wal_compact_errors_total",
		"qbets_panics_total",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("metrics missing %s", name)
		}
	}
}

func TestServerRecoversHandlerPanics(t *testing.T) {
	srv := NewServer(false, WithSeed(1))
	srv.svc = nil // any handler touching the service now panics

	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/status", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", w.Code)
	}
	var er ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error == "" {
		t.Fatalf("500 without JSON error body: %s", w.Body.String())
	}
	if srv.panics.Value() != 1 {
		t.Fatalf("panics counter = %d, want 1", srv.panics.Value())
	}
	if srv.httpRequests.With("status", "500").Value() != 1 {
		t.Fatal("panicked request not counted under its endpoint/code")
	}

	// One panic does not poison the server: later requests still work.
	srv.svc = NewService(false, WithSeed(1))
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("healthz after panic: status %d", w.Code)
	}
}
