package qbets

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/repl"
	"repro/internal/wal"
)

// feedChunkedSnapshot drives a captured stream through the follower-side
// chunked install interface, the way a repl session would.
func feedChunkedSnapshot(t *testing.T, src repl.SnapshotStream, dst *Service) {
	t.Helper()
	if err := dst.BeginReplicaSnapshot(src.CoveredSeq(), src.Header()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < src.Chunks(); i++ {
		chunk, err := src.AppendChunk(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.ApplyReplicaSnapshotChunk(i, chunk); err != nil {
			t.Fatal(err)
		}
	}
	if err := dst.CommitReplicaSnapshot(src.CoveredSeq()); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaSnapshotStreamRoundTrip: a chunked capture, fed chunk by
// chunk into a follower, reproduces the leader's state exactly — and
// matches what the monolithic snapshot would have installed.
func TestReplicaSnapshotStreamRoundTrip(t *testing.T) {
	leader := NewService(false, WithSeed(1))
	w := newReplicaWAL(t, wal.Options{Mode: wal.SyncEachRecord})
	if _, err := leader.RecoverWAL(w); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		if err := leader.Observe(fmt.Sprintf("q%d", i%7), 0, float64(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	leader.SetSnapshotChunkStreams(2) // 7 streams -> 4 chunks
	ss, err := leader.OpenReplicaSnapshotStream()
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if ss.CoveredSeq() != 120 {
		t.Fatalf("covered = %d, want 120", ss.CoveredSeq())
	}
	if ss.Chunks() != 4 {
		t.Fatalf("chunks = %d, want 4", ss.Chunks())
	}

	chunked := NewService(false, WithSeed(1))
	chunked.SetFollower(true)
	feedChunkedSnapshot(t, ss, chunked)
	if got := chunked.ReplicaAppliedSeq(); got != 120 {
		t.Fatalf("ReplicaAppliedSeq = %d, want 120", got)
	}

	covered, blob, err := leader.ReplicaSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	mono := NewService(false, WithSeed(1))
	mono.SetFollower(true)
	if err := mono.InstallReplicaSnapshot(covered, blob); err != nil {
		t.Fatal(err)
	}

	if chunked.NumStreams() != leader.NumStreams() || mono.NumStreams() != leader.NumStreams() {
		t.Fatalf("streams: chunked %d, mono %d, leader %d", chunked.NumStreams(), mono.NumStreams(), leader.NumStreams())
	}
	for i := 0; i < 7; i++ {
		q := fmt.Sprintf("q%d", i)
		want, wantOK := leader.Forecast(q, 0)
		if got, ok := chunked.Forecast(q, 0); got != want || ok != wantOK {
			t.Fatalf("queue %q: chunked forecast (%v,%v) != leader (%v,%v)", q, got, ok, want, wantOK)
		}
		if got, ok := mono.Forecast(q, 0); got != want || ok != wantOK {
			t.Fatalf("queue %q: monolithic forecast (%v,%v) != leader (%v,%v)", q, got, ok, want, wantOK)
		}
		ws, _ := leader.StreamStats(q, 0)
		cs, _ := chunked.StreamStats(q, 0)
		if ws.Observations != cs.Observations {
			t.Fatalf("queue %q: chunked has %d observations, leader %d", q, cs.Observations, ws.Observations)
		}
	}

	// Records at or below the covered sequence dedup away afterwards.
	pre, _ := chunked.StreamStats("q0", 0)
	if err := chunked.ApplyReplicated(119, []wal.Record{{Seq: 120, Key: "q0", Wait: 1, UnixNanos: 1}}); err != nil {
		t.Fatal(err)
	}
	if post, _ := chunked.StreamStats("q0", 0); post.Observations != pre.Observations {
		t.Fatalf("covered record re-applied after chunked install")
	}
}

// TestChunkedInstallGuards: the follower-side install refuses misuse and
// a torn transfer leaves serving state untouched.
func TestChunkedInstallGuards(t *testing.T) {
	s := NewService(false, WithSeed(1))
	if err := s.BeginReplicaSnapshot(1, []byte("{}")); err == nil {
		t.Fatal("BeginReplicaSnapshot accepted on a non-follower")
	}
	s.SetFollower(true)
	if err := s.ApplyReplicaSnapshotChunk(0, []byte("{}")); err == nil {
		t.Fatal("chunk accepted without a pending install")
	}
	if err := s.CommitReplicaSnapshot(1); err == nil {
		t.Fatal("commit accepted without a pending install")
	}
	if err := s.BeginReplicaSnapshot(1, []byte("not json")); !errors.Is(err, ErrCorruptState) {
		t.Fatalf("corrupt header: got %v, want ErrCorruptState", err)
	}

	// A commit before every declared chunk arrived (a reordered end
	// marker) must refuse rather than install truncated state.
	if err := s.BeginReplicaSnapshot(7, []byte(`{"by_procs":false,"next_seed":1,"streams":2,"chunks":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyReplicaSnapshotChunk(0, []byte("{}")); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitReplicaSnapshot(7); !errors.Is(err, ErrCorruptState) {
		t.Fatalf("premature commit: got %v, want ErrCorruptState", err)
	}
	if s.ReplicaAppliedSeq() != 0 {
		t.Fatalf("premature commit moved the applied seq to %d", s.ReplicaAppliedSeq())
	}
	// An out-of-order or extra chunk is refused too.
	if err := s.BeginReplicaSnapshot(7, []byte(`{"by_procs":false,"next_seed":1,"streams":2,"chunks":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyReplicaSnapshotChunk(1, []byte("{}")); !errors.Is(err, ErrCorruptState) {
		t.Fatalf("out-of-order chunk: got %v, want ErrCorruptState", err)
	}
	s.AbortReplicaSnapshot()

	// Seed some replicated state, then tear a transfer mid-way: nothing
	// about the serving state may change.
	if err := s.ApplyReplicated(0, []wal.Record{{Seq: 1, Key: "normal", Wait: 5, UnixNanos: 1}}); err != nil {
		t.Fatal(err)
	}
	preF, preOK := s.Forecast("normal", 0)
	if err := s.BeginReplicaSnapshot(9, []byte(`{"by_procs":false,"next_seed":1,"streams":1,"chunks":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyReplicaSnapshotChunk(0, []byte("torn")); !errors.Is(err, ErrCorruptState) {
		t.Fatalf("corrupt chunk: got %v, want ErrCorruptState", err)
	}
	s.AbortReplicaSnapshot()
	if err := s.CommitReplicaSnapshot(9); err == nil {
		t.Fatal("commit accepted after abort")
	}
	if f, ok := s.Forecast("normal", 0); f != preF || ok != preOK {
		t.Fatalf("torn transfer changed serving state: (%v,%v) -> (%v,%v)", preF, preOK, f, ok)
	}
	if s.ReplicaAppliedSeq() != 1 {
		t.Fatalf("torn transfer moved the applied seq to %d", s.ReplicaAppliedSeq())
	}
}

// TestSnapshotCatchupMemoryIsChunkBounded is the O(chunk) claim as a
// budget test: while two followers catch up over real sessions at once,
// the leader's peak in-flight snapshot bytes stay within the per-session
// window bound — a budget derived from chunk size, far below the O(state)
// bytes the monolithic path would have pinned per follower.
func TestSnapshotCatchupMemoryIsChunkBounded(t *testing.T) {
	leaderSvc := NewService(false, WithSeed(1))
	w := newReplicaWAL(t, wal.Options{Mode: wal.SyncEachRecord})
	if _, err := leaderSvc.RecoverWAL(w); err != nil {
		t.Fatal(err)
	}
	const streams = 256
	for i := 0; i < streams; i++ {
		q := fmt.Sprintf("q%03d", i)
		for j := 0; j < 40; j++ {
			if err := leaderSvc.Observe(q, 0, float64(1+(i+j)%800)); err != nil {
				t.Fatal(err)
			}
		}
	}
	leaderSvc.SetSnapshotChunkStreams(16) // 256 streams -> 16 chunks

	// Measure the transfer's actual shape: the largest framed chunk and
	// the O(state) total a monolithic install would ship per follower.
	ss, err := leaderSvc.OpenReplicaSnapshotStream()
	if err != nil {
		t.Fatal(err)
	}
	maxChunk, total := 0, 0
	for i := 0; i < ss.Chunks(); i++ {
		c, err := ss.AppendChunk(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		framed := len(c) + 4 // CRC prefix rides in the message payload
		total += framed
		if framed > maxChunk {
			maxChunk = framed
		}
	}
	ss.Close()

	const windowBytes = 8 << 10
	// Per session the window admits one chunk past WindowBytes; two
	// concurrent catch-ups at most double it.
	budget := int64(2 * (windowBytes + maxChunk))
	if int64(total) <= budget {
		t.Fatalf("state too small for the bound to mean anything: total %d <= budget %d", total, budget)
	}

	tr := repl.NewMemTransport()
	ln, err := tr.Listen("leader")
	if err != nil {
		t.Fatal(err)
	}
	ldr := repl.NewLeader(w, leaderSvc, repl.LeaderOptions{
		Epoch:          1,
		HeartbeatEvery: 10 * time.Millisecond,
		WindowBytes:    windowBytes,
	})
	defer ldr.Close()
	go ldr.Serve(ln)

	covered := w.SyncedSeq()
	fols := make([]*repl.Follower, 2)
	svcs := make([]*Service, 2)
	for i := range fols {
		svcs[i] = NewService(false, WithSeed(1))
		svcs[i].SetFollower(true)
		f, err := repl.NewFollower(svcs[i], repl.FollowerOptions{
			Addr:       "leader",
			Transport:  tr,
			Epochs:     &repl.MemEpochStore{},
			BackoffMin: time.Millisecond,
			BackoffMax: 20 * time.Millisecond,
			Rand:       rand.New(rand.NewSource(int64(i + 1))),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		go f.Run()
		fols[i] = f
	}
	for i, svc := range svcs {
		svc := svc
		waitForReplica(t, fmt.Sprintf("follower %d to catch up", i), func() bool {
			return svc.ReplicaAppliedSeq() >= covered
		})
	}
	for i, svc := range svcs {
		if got := svc.NumStreams(); got != streams {
			t.Fatalf("follower %d has %d streams, want %d", i, got, streams)
		}
	}
	peak := ldr.SnapInflightPeakBytes()
	if peak == 0 {
		t.Fatal("no chunked transfer happened: peak gauge never moved")
	}
	if peak > budget {
		t.Fatalf("peak in-flight snapshot bytes %d exceed the O(chunk) budget %d (state total %d)", peak, budget, total)
	}
	t.Logf("peak %d bytes, budget %d, O(state) per follower %d", peak, budget, total)
}
