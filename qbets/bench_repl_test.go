package qbets

import "testing"

// BenchmarkFollowerForecast measures the follower read path: the same
// lock-free snapshot serve as on the leader, with the role gate flipped.
// The number on record proves consistent-prefix follower reads pay
// nothing for the role — the gate is one atomic load on the write path
// and absent from the read path entirely.
func BenchmarkFollowerForecast(b *testing.B) {
	svc := prewarmReadService(b)
	svc.SetFollower(true)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, ok := svc.Forecast("normal", 1); !ok {
				b.Fatal("no forecast")
			}
		}
	})
}
