package qbets

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/wal"
)

// Concurrent mixed-workload benchmark: observes and forecasts spread over
// many distinct streams, the serving pattern the sharded registry exists
// for. The "global-lock" variant reproduces the previous architecture —
// every operation serialized behind one mutex — so the pair quantifies
// what sharding buys. On a multi-core host the sharded variant scales with
// GOMAXPROCS while the global lock stays flat; expect >= 3x at 8 streams
// and 8+ cores. (On a single-core host the two converge: there is no
// parallelism for sharding to unlock.)
//
//	go test -run '^$' -bench ConcurrentMixed -cpu 1,4,8 ./qbets/
func BenchmarkServiceConcurrentMixed(b *testing.B) {
	const streams = 8
	prewarm := func() *Service {
		svc := NewService(false, WithSeed(1))
		rng := rand.New(rand.NewSource(1))
		for s := 0; s < streams; s++ {
			q := fmt.Sprintf("q%d", s)
			for i := 0; i < 500; i++ {
				svc.Observe(q, 1, math.Exp(rng.NormFloat64())*60)
			}
		}
		return svc
	}
	names := make([]string, streams)
	for s := range names {
		names[s] = fmt.Sprintf("q%d", s)
	}

	run := func(b *testing.B, observe func(q string, w float64), forecast func(q string)) {
		var ctr atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			// Each goroutine works a rotating stream so traffic covers all
			// streams while consecutive ops usually hit different locks.
			i := int(ctr.Add(1))
			for pb.Next() {
				q := names[i%streams]
				if i%4 == 0 {
					observe(q, float64(i%1000))
				} else {
					forecast(q)
				}
				i++
			}
		})
	}

	b.Run("sharded", func(b *testing.B) {
		svc := prewarm()
		run(b,
			func(q string, w float64) { svc.Observe(q, 1, w) },
			func(q string) { svc.Forecast(q, 1) })
	})

	b.Run("global-lock", func(b *testing.B) {
		svc := prewarm()
		var mu sync.Mutex
		run(b,
			func(q string, w float64) { mu.Lock(); svc.Observe(q, 1, w); mu.Unlock() },
			func(q string) { mu.Lock(); svc.Forecast(q, 1); mu.Unlock() })
	})
}

// BenchmarkServiceObserve quantifies what durability costs on the observe
// hot path: the in-memory baseline vs. the same workload logged through a
// write-ahead log under each sync policy. Interval sync (the default
// deployment mode) amortizes the fsync and should stay well under 2x the
// no-WAL path; per-record sync pays a real fsync per observation and is
// reported for contrast, not expected to be cheap.
//
//	go test -run '^$' -bench ServiceObserve ./qbets/
func BenchmarkServiceObserve(b *testing.B) {
	run := func(b *testing.B, svc *Service) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := svc.Observe("normal", 1, float64(i%1000)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("nowal", func(b *testing.B) {
		run(b, NewService(false, WithSeed(3)))
	})
	b.Run("wal-interval", func(b *testing.B) {
		w, err := wal.Open(b.TempDir(), wal.Options{Mode: wal.SyncInterval})
		if err != nil {
			b.Fatal(err)
		}
		svc := NewService(false, WithSeed(3))
		if _, err := svc.RecoverWAL(w); err != nil {
			b.Fatal(err)
		}
		run(b, svc)
	})
	b.Run("wal-each-record", func(b *testing.B) {
		w, err := wal.Open(b.TempDir(), wal.Options{Mode: wal.SyncEachRecord})
		if err != nil {
			b.Fatal(err)
		}
		svc := NewService(false, WithSeed(3))
		if _, err := svc.RecoverWAL(w); err != nil {
			b.Fatal(err)
		}
		run(b, svc)
	})
}

// BenchmarkServerObserveBatch measures the HTTP ingestion path end to end
// (JSON decode, validation, sharded dispatch, metrics) without network.
func BenchmarkServerObserveBatch(b *testing.B) {
	srv := NewServer(true, WithSeed(2))
	var payload []byte
	{
		sb := []byte(`[`)
		for i := 0; i < 100; i++ {
			if i > 0 {
				sb = append(sb, ',')
			}
			sb = append(sb, []byte(fmt.Sprintf(`{"queue":"normal","procs":%d,"wait_seconds":%d}`, 1<<(i%8), 10+i))...)
		}
		payload = append(sb, ']')
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/observe", bytes.NewReader(payload))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusNoContent {
			b.Fatalf("status %d", w.Code)
		}
	}
}
