package qbets

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/wal"
)

// Concurrent mixed-workload benchmark: observes and forecasts spread over
// many distinct streams, the serving pattern the sharded registry exists
// for. The "global-lock" variant reproduces the previous architecture —
// every operation serialized behind one mutex — so the pair quantifies
// what sharding buys. On a multi-core host the sharded variant scales with
// GOMAXPROCS while the global lock stays flat; expect >= 3x at 8 streams
// and 8+ cores. (On a single-core host the two converge: there is no
// parallelism for sharding to unlock.)
//
//	go test -run '^$' -bench ConcurrentMixed -cpu 1,4,8 ./qbets/
func BenchmarkServiceConcurrentMixed(b *testing.B) {
	const streams = 8
	prewarm := func() *Service {
		svc := NewService(false, WithSeed(1))
		rng := rand.New(rand.NewSource(1))
		for s := 0; s < streams; s++ {
			q := fmt.Sprintf("q%d", s)
			for i := 0; i < 500; i++ {
				svc.Observe(q, 1, math.Exp(rng.NormFloat64())*60)
			}
		}
		return svc
	}
	names := make([]string, streams)
	for s := range names {
		names[s] = fmt.Sprintf("q%d", s)
	}

	run := func(b *testing.B, observe func(q string, w float64), forecast func(q string)) {
		var ctr atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			// Each goroutine works a rotating stream so traffic covers all
			// streams while consecutive ops usually hit different locks.
			i := int(ctr.Add(1))
			for pb.Next() {
				q := names[i%streams]
				if i%4 == 0 {
					observe(q, float64(i%1000))
				} else {
					forecast(q)
				}
				i++
			}
		})
	}

	b.Run("sharded", func(b *testing.B) {
		svc := prewarm()
		run(b,
			func(q string, w float64) { svc.Observe(q, 1, w) },
			func(q string) { svc.Forecast(q, 1) })
	})

	b.Run("global-lock", func(b *testing.B) {
		svc := prewarm()
		var mu sync.Mutex
		run(b,
			func(q string, w float64) { mu.Lock(); svc.Observe(q, 1, w); mu.Unlock() },
			func(q string) { mu.Lock(); svc.Forecast(q, 1); mu.Unlock() })
	})
}

// BenchmarkServiceObserve quantifies what durability costs on the observe
// hot path: the in-memory baseline vs. the same workload logged through a
// write-ahead log under each sync policy. Interval sync (the default
// deployment mode) amortizes the fsync and should stay well under 2x the
// no-WAL path; per-record sync pays a real fsync per observation and is
// reported for contrast, not expected to be cheap.
//
//	go test -run '^$' -bench ServiceObserve ./qbets/
func BenchmarkServiceObserve(b *testing.B) {
	run := func(b *testing.B, svc *Service) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := svc.Observe("normal", 1, float64(i%1000)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("nowal", func(b *testing.B) {
		run(b, NewService(false, WithSeed(3)))
	})
	b.Run("wal-interval", func(b *testing.B) {
		w, err := wal.Open(b.TempDir(), wal.Options{Mode: wal.SyncInterval})
		if err != nil {
			b.Fatal(err)
		}
		svc := NewService(false, WithSeed(3))
		if _, err := svc.RecoverWAL(w); err != nil {
			b.Fatal(err)
		}
		run(b, svc)
	})
	b.Run("wal-each-record", func(b *testing.B) {
		w, err := wal.Open(b.TempDir(), wal.Options{Mode: wal.SyncEachRecord})
		if err != nil {
			b.Fatal(err)
		}
		svc := NewService(false, WithSeed(3))
		if _, err := svc.RecoverWAL(w); err != nil {
			b.Fatal(err)
		}
		run(b, svc)
	})
}

// BenchmarkServiceObserveBatch covers the batched apply path across batch
// sizes and sync policies. One op = one batch; the reported records/s
// metric normalizes across sizes. The sync=always numbers against
// BenchmarkServiceObserve/wal-each-record (one fsync per record) are the
// group-append payoff: at batch 100 the WAL pays one write and one fsync
// for the whole batch.
//
//	go test -run '^$' -bench ServiceObserveBatch ./qbets/
func BenchmarkServiceObserveBatch(b *testing.B) {
	newSvc := func(b *testing.B, mode wal.SyncMode, withWAL, groupCommit bool) *Service {
		svc := NewService(false, WithSeed(3))
		if withWAL {
			w, err := wal.Open(b.TempDir(), wal.Options{Mode: mode, GroupCommit: groupCommit})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := svc.RecoverWAL(w); err != nil {
				b.Fatal(err)
			}
		}
		return svc
	}
	makeBatch := func(size int) []ObserveRecord {
		recs := make([]ObserveRecord, size)
		for i := range recs {
			recs[i] = ObserveRecord{Queue: "normal", Procs: 1, WaitSeconds: float64(10 + i%1000)}
		}
		return recs
	}
	for _, mode := range []struct {
		name    string
		mode    wal.SyncMode
		withWAL bool
	}{
		{"nowal", 0, false},
		{"wal-interval", wal.SyncInterval, true},
		{"wal-always", wal.SyncEachRecord, true},
	} {
		for _, size := range []int{1, 10, 100} {
			b.Run(fmt.Sprintf("%s/size%d", mode.name, size), func(b *testing.B) {
				svc := newSvc(b, mode.mode, mode.withWAL, false)
				batch := makeBatch(size)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if applied, err := svc.ObserveBatch(batch); err != nil || applied != size {
						b.Fatalf("applied %d, %v", applied, err)
					}
				}
				b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
			})
		}
	}
	// Group commit under concurrency: goroutines feeding different streams
	// (same-stream batches serialize on the stream write lock regardless)
	// each commit small batches with full per-batch durability; the
	// leader/follower path amortizes the fsync across them.
	b.Run("wal-always-group-commit/size10/parallel", func(b *testing.B) {
		svc := newSvc(b, wal.SyncEachRecord, true, true)
		// Commits block in fsync, not on CPU, so concurrency beyond
		// GOMAXPROCS is what the group-commit path exists to absorb.
		b.SetParallelism(8)
		var ctr atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			q := fmt.Sprintf("q%d", ctr.Add(1))
			batch := make([]ObserveRecord, 10)
			for i := range batch {
				batch[i] = ObserveRecord{Queue: q, Procs: 1, WaitSeconds: float64(10 + i)}
			}
			for pb.Next() {
				if applied, err := svc.ObserveBatch(batch); err != nil || applied != 10 {
					b.Fatalf("applied %d, %v", applied, err)
				}
			}
		})
		b.ReportMetric(10*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
}

func observePayload(size int) []byte {
	sb := []byte(`[`)
	for i := 0; i < size; i++ {
		if i > 0 {
			sb = append(sb, ',')
		}
		sb = append(sb, []byte(fmt.Sprintf(`{"queue":"normal","procs":%d,"wait_seconds":%d}`, 1<<(i%8), 10+i))...)
	}
	return append(sb, ']')
}

// BenchmarkServerObserveBatch measures the HTTP ingestion path end to end
// (JSON decode, validation, sharded dispatch, metrics) without network,
// across batch sizes and sync policies. The wal-always pair is the PR's
// headline comparison: "batched" is the shipping pipeline (one group
// append + one fsync per request), "per-record-appends" reproduces the
// previous pipeline — decode everything, then one Observe with its own
// WAL append and fsync per record.
//
//	go test -run '^$' -bench ServerObserveBatch ./qbets/
func BenchmarkServerObserveBatch(b *testing.B) {
	bench := func(b *testing.B, h http.Handler, payload []byte, size int) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, "/v1/observe", bytes.NewReader(payload))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusNoContent {
				b.Fatalf("status %d", w.Code)
			}
		}
		b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	}
	newWALServer := func(b *testing.B) (*Server, *Service) {
		w, err := wal.Open(b.TempDir(), wal.Options{Mode: wal.SyncEachRecord})
		if err != nil {
			b.Fatal(err)
		}
		svc := NewService(true, WithSeed(2))
		if _, err := svc.RecoverWAL(w); err != nil {
			b.Fatal(err)
		}
		return NewServerWith(svc), svc
	}

	for _, size := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("nowal/size%d", size), func(b *testing.B) {
			bench(b, NewServer(true, WithSeed(2)), observePayload(size), size)
		})
	}

	b.Run("wal-always/size100/batched", func(b *testing.B) {
		srv, _ := newWALServer(b)
		bench(b, srv, observePayload(100), 100)
	})

	b.Run("wal-always/size100/per-record-appends", func(b *testing.B) {
		_, svc := newWALServer(b)
		legacy := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			raw, err := io.ReadAll(r.Body)
			if err != nil {
				b.Fatal(err)
			}
			var recs []ObserveRecord
			if err := json.Unmarshal(raw, &recs); err != nil {
				b.Fatal(err)
			}
			for _, rec := range recs {
				if err := svc.Observe(rec.Queue, rec.Procs, rec.WaitSeconds); err != nil {
					b.Fatal(err)
				}
			}
			w.WriteHeader(http.StatusNoContent)
		})
		bench(b, legacy, observePayload(100), 100)
	})
}
