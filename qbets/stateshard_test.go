package qbets

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// buildShardTestService creates a service with several streams of
// deterministic traffic and returns it plus the per-queue observation
// schedule so tests can extend it identically on a restored copy.
func buildShardTestService(t *testing.T, queues int) *Service {
	t.Helper()
	svc := NewService(false, WithSeed(13))
	for q := 0; q < queues; q++ {
		for i := 0; i < 120; i++ {
			if err := svc.Observe(fmt.Sprintf("shq%03d", q), 1, shardWait(q, i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return svc
}

func shardWait(q, i int) float64 { return math.Exp(math.Sin(float64(q*500+i))) * 45 }

// TestSaveLoadShardsRoundTrip saves a mixed hot/cold registry as a sharded
// generation and checks the restore is exact, all-cold, and that writes
// afterwards rehydrate to the oracle's state.
func TestSaveLoadShardsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const queues = 9 // more queues than shards: every shard file non-trivial
	svc := buildShardTestService(t, queues)
	// Evict a subset so the save sees both hydrated and cold streams.
	svc.EvictToCap(queues / 2)

	if err := svc.SaveShards(dir, 4); err != nil {
		t.Fatal(err)
	}
	if !IsShardedStateDir(dir) {
		t.Fatal("IsShardedStateDir = false on a freshly saved directory")
	}

	restored, err := LoadServiceShards(dir, false, WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumStreams() != queues {
		t.Fatalf("restored %d streams, want %d", restored.NumStreams(), queues)
	}
	if restored.LiveStreams() != 0 {
		t.Fatalf("restored %d hydrated streams, want 0 (cold adoption)", restored.LiveStreams())
	}
	// Read plane must be exact without rehydrating anything.
	wantQ := svc.Queues()
	gotQ := restored.Queues()
	if len(gotQ) != len(wantQ) {
		t.Fatalf("restored Queues() = %d keys, want %d", len(gotQ), len(wantQ))
	}
	for i := range wantQ {
		if gotQ[i] != wantQ[i] {
			t.Fatalf("Queues()[%d] = %q, want %q", i, gotQ[i], wantQ[i])
		}
	}
	for q := 0; q < queues; q++ {
		name := fmt.Sprintf("shq%03d", q)
		gb, gok := restored.Forecast(name, 1)
		wb, wok := svc.Forecast(name, 1)
		if gok != wok || gb != wb {
			t.Fatalf("queue %s: restored bound (%g,%v), want (%g,%v)", name, gb, gok, wb, wok)
		}
		if got, want := restored.Observations(name, 1), svc.Observations(name, 1); got != want {
			t.Fatalf("queue %s: restored %d observations, want %d", name, got, want)
		}
	}
	if restored.LiveStreams() != 0 {
		t.Fatal("read traffic rehydrated restored streams")
	}

	// Writes rehydrate; forecasts then track a never-saved oracle exactly.
	for q := 0; q < queues; q++ {
		name := fmt.Sprintf("shq%03d", q)
		for i := 120; i < 160; i++ {
			if err := restored.Observe(name, 1, shardWait(q, i)); err != nil {
				t.Fatal(err)
			}
			if err := svc.Observe(name, 1, shardWait(q, i)); err != nil {
				t.Fatal(err)
			}
		}
		gb, gok := restored.Forecast(name, 1)
		wb, wok := svc.Forecast(name, 1)
		if gok != wok || gb != wb {
			t.Fatalf("queue %s after writes: restored bound (%g,%v), oracle (%g,%v)", name, gb, gok, wb, wok)
		}
	}
}

// TestSaveShardsRotates checks a second save supersedes the first: only
// one generation directory survives and CURRENT points at it.
func TestSaveShardsRotates(t *testing.T) {
	dir := t.TempDir()
	svc := buildShardTestService(t, 3)
	if err := svc.SaveShards(dir, 2); err != nil {
		t.Fatal(err)
	}
	svc.Observe("shq000", 1, 1)
	if err := svc.SaveShards(dir, 2); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	gens := 0
	for _, e := range ents {
		if e.IsDir() {
			gens++
		}
	}
	if gens != 1 {
		t.Fatalf("%d generation directories after two saves, want 1", gens)
	}
	restored, err := LoadServiceShards(dir, false, WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Observations("shq000", 1), svc.Observations("shq000", 1); got != want {
		t.Fatalf("restored latest generation has %d observations, want %d", got, want)
	}
}

// TestLoadShardsCorruption checks every corruption mode maps to
// ErrCorruptState (so the server's quarantine path applies) and a missing
// directory surfaces as os.IsNotExist (so "starting fresh" applies).
func TestLoadShardsCorruption(t *testing.T) {
	if _, err := LoadServiceShards(filepath.Join(t.TempDir(), "absent"), false); !os.IsNotExist(err) {
		t.Fatalf("missing dir: got %v, want os.IsNotExist", err)
	}

	corrupt := func(name string, mutate func(dir string)) {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			svc := buildShardTestService(t, 4)
			if err := svc.SaveShards(dir, 2); err != nil {
				t.Fatal(err)
			}
			mutate(dir)
			if _, err := LoadServiceShards(dir, false); !isCorrupt(err) {
				t.Fatalf("got %v, want ErrCorruptState", err)
			}
		})
	}
	genDir := func(dir string) string {
		cur, err := os.ReadFile(filepath.Join(dir, currentFile))
		if err != nil {
			t.Fatal(err)
		}
		return filepath.Join(dir, string(cur[:len(cur)-1]))
	}
	corrupt("bad-current", func(dir string) {
		os.WriteFile(filepath.Join(dir, currentFile), []byte("../escape\n"), 0o644)
	})
	corrupt("dangling-current", func(dir string) {
		os.WriteFile(filepath.Join(dir, currentFile), []byte("gen-0\n"), 0o644)
	})
	corrupt("mangled-manifest", func(dir string) {
		os.WriteFile(filepath.Join(genDir(dir), "manifest.json"), []byte("{oops"), 0o644)
	})
	corrupt("missing-shard", func(dir string) {
		os.Remove(filepath.Join(genDir(dir), shardFileName(0)))
	})
	corrupt("mangled-shard", func(dir string) {
		os.WriteFile(filepath.Join(genDir(dir), shardFileName(1)), []byte("not json"), 0o644)
	})
	corrupt("zero-shard-manifest", func(dir string) {
		os.WriteFile(filepath.Join(genDir(dir), "manifest.json"), []byte("{\"shards\":0}"), 0o644)
	})
}

func isCorrupt(err error) bool { return errors.Is(err, ErrCorruptState) }
