package qbets

import (
	"io"
	"os"

	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Job is one record of a batch-queue submission trace.
type Job struct {
	// Submit is the submission time in Unix seconds.
	Submit int64
	// WaitSeconds is the queuing delay the job experienced.
	WaitSeconds float64
	// Procs is the requested processor count.
	Procs int
}

// Trace is a named, time-ordered job trace.
type Trace struct {
	Machine string
	Queue   string
	Jobs    []Job
}

func toInternal(t Trace) *trace.Trace {
	it := &trace.Trace{Machine: t.Machine, Queue: t.Queue}
	it.Jobs = make([]trace.Job, len(t.Jobs))
	for i, j := range t.Jobs {
		it.Jobs[i] = trace.Job{Submit: j.Submit, Wait: j.WaitSeconds, Procs: j.Procs}
	}
	it.SortBySubmit()
	return it
}

func fromInternal(it *trace.Trace) Trace {
	t := Trace{Machine: it.Machine, Queue: it.Queue, Jobs: make([]Job, len(it.Jobs))}
	for i, j := range it.Jobs {
		t.Jobs[i] = Job{Submit: j.Submit, WaitSeconds: j.Wait, Procs: j.Procs}
	}
	return t
}

// ReadTrace parses a trace in the line-oriented text format
// "<submit> <wait> <procs>" with '#' comments (see internal/trace).
func ReadTrace(r io.Reader) (Trace, error) {
	it, err := trace.Read(r)
	if err != nil {
		return Trace{}, err
	}
	return fromInternal(it), nil
}

// ReadTraceFile is ReadTrace over a file path.
func ReadTraceFile(path string) (Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return Trace{}, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// WriteTraceFile encodes the trace to a file in the same format.
func WriteTraceFile(path string, t Trace) error {
	return trace.WriteFile(path, toInternal(t))
}

// EvalConfig controls Evaluate. The zero value reproduces the paper's
// settings: BMBP at the 0.95 quantile and 95% confidence, 300-second
// refit epochs, a 10% training prefix.
type EvalConfig struct {
	Quantile     float64
	Confidence   float64
	EpochSeconds int64
	// TrainFraction is the unscored warm-up prefix (default 0.10).
	TrainFraction float64
	// Seed fixes predictor-internal randomness.
	Seed int64
}

// EvalReport summarizes how a method would have performed over a trace,
// under the paper's rule that a job's wait becomes visible only when the
// job starts.
type EvalReport struct {
	Method string
	// Scored is the number of post-training jobs quoted a bound; Correct
	// of them waited no longer than it.
	Scored  int
	Correct int
	// CorrectFraction is Correct/Scored: the paper's Table 3/5 statistic.
	CorrectFraction float64
	// MedianRatio is the median of actual/predicted wait over scored
	// jobs: the paper's Table 4 accuracy statistic (closer to 1 =
	// tighter bounds, still correct).
	MedianRatio float64
	// ChangePoints is how many times the method trimmed its history.
	ChangePoints int
}

// Evaluate replays the trace against BMBP and the paper's two log-normal
// comparators, returning one report per method in the paper's column order
// (bmbp, logn-notrim, logn-trim).
func Evaluate(t Trace, cfg EvalConfig) []EvalReport {
	if cfg.Quantile == 0 {
		cfg.Quantile = 0.95
	}
	if cfg.Confidence == 0 {
		cfg.Confidence = 0.95
	}
	preds := predictor.Standard(cfg.Quantile, cfg.Confidence, cfg.Seed)
	results := sim.Run(toInternal(t), preds, sim.Config{
		EpochSeconds:  cfg.EpochSeconds,
		TrainFraction: cfg.TrainFraction,
	})
	out := make([]EvalReport, len(results))
	for i, r := range results {
		out[i] = EvalReport{
			Method:          r.Method,
			Scored:          r.Scored,
			Correct:         r.Correct,
			CorrectFraction: r.CorrectFraction(),
			MedianRatio:     r.MedianRatio(),
			ChangePoints:    r.Trims,
		}
	}
	return out
}
