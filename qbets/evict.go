package qbets

import (
	"fmt"
	"slices"
	"time"
)

// Stream lifecycle for the million-stream regime (ROADMAP: "millions of
// users"). A hydrated stream carries a full Forecaster — history buffer,
// calibration state, scratch — which is what makes ingest and refits fast
// but costs kilobytes per stream. Most streams in a large registry are
// idle most of the time, so idle streams are *evicted*: the forecaster is
// serialized into a compact cold blob and dropped, while the stream keeps
// serving reads forever from its published forecast snapshot (bound,
// counters, cached profile — all immutable, all lock-free). The first
// write to a cold stream rehydrates it from the blob, observes, and
// carries on; recovery and state saves handle cold streams without ever
// inflating them.
//
// The activity clock is deliberately coarse: eviction passes advance it,
// writes stamp it with one atomic load + compare. TTLs are minutes to
// hours, so per-write time syscalls would be pure overhead.

// rehydrateLocked restores an evicted stream's forecaster from its cold
// blob. Caller holds the stream's write lock; on return the stream is
// fully hydrated and settled, ready for applyLocked.
func (st *stream) rehydrateLocked(s *Service) error {
	fc := New()
	if err := fc.UnmarshalBinary(st.cold); err != nil {
		return fmt.Errorf("qbets: rehydrate stream %q: %w", st.key, err)
	}
	fc.Forecast() // settle before any read path can see it
	st.fc = fc
	st.cold = nil
	st.trimsSeen = fc.ChangePoints()
	st.evicted.Store(false)
	s.nCold.Add(-1)
	s.rehydrations.Inc()
	return nil
}

// evictLocked serializes the stream's forecaster into the cold blob and
// drops it. Caller holds the stream's write lock and fc must be non-nil.
// Pending state is published first and the quantile profile is cached on
// the snapshot, so every read API keeps answering — exactly, not stalely —
// for as long as the stream stays cold; reads alone never rehydrate.
func (st *stream) evictLocked(s *Service) error {
	if st.dirty.Load() {
		st.publishLocked()
	}
	st.fillProfileLocked(s)
	blob, err := st.fc.MarshalBinary()
	if err != nil {
		return fmt.Errorf("qbets: evict stream %q: %w", st.key, err)
	}
	st.cold = blob
	st.fc = nil
	st.evicted.Store(true)
	s.nCold.Add(1)
	s.evictions.Inc()
	return nil
}

// evictCandidate is one stream an eviction pass considered, with the
// activity stamp it was scanned at (re-checked under the stream lock so a
// write that lands mid-pass vetoes the eviction).
type evictCandidate struct {
	st    *stream
	touch int64
}

// EvictIdle evicts every hydrated stream whose last write is older than
// ttl on the service's activity clock, returning how many were evicted.
// The clock's resolution is the eviction cadence: a stream written since
// the previous pass always survives, whatever ttl. Safe to run
// concurrently with traffic — a stream that takes a write between scan
// and eviction is skipped.
func (s *Service) EvictIdle(ttl time.Duration) int {
	now := time.Now().UnixNano()
	s.clock.Store(now)
	cutoff := now - ttl.Nanoseconds()
	var cands []evictCandidate
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, st := range sh.m {
			if t := st.lastTouch.Load(); !st.evicted.Load() && t < cutoff {
				cands = append(cands, evictCandidate{st, t})
			}
		}
		sh.mu.RUnlock()
	}
	return s.evictScanned(cands, cutoff)
}

// EvictToCap evicts the longest-idle hydrated streams until at most max
// remain hydrated, returning how many were evicted. Cold streams keep
// serving reads, so the cap bounds forecaster heap, not registry size.
func (s *Service) EvictToCap(max int) int {
	excess := int(s.nStreams.Load()-s.nCold.Load()) - max
	if excess <= 0 {
		return 0
	}
	now := time.Now().UnixNano()
	s.clock.Store(now)
	var cands []evictCandidate
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, st := range sh.m {
			if !st.evicted.Load() {
				cands = append(cands, evictCandidate{st, st.lastTouch.Load()})
			}
		}
		sh.mu.RUnlock()
	}
	slices.SortFunc(cands, func(a, b evictCandidate) int {
		if a.touch != b.touch {
			if a.touch < b.touch {
				return -1
			}
			return 1
		}
		return 0
	})
	if len(cands) > excess {
		cands = cands[:excess]
	}
	// cutoff = now: only a write stamped during this very pass (with the
	// just-advanced clock) vetoes its stream's eviction.
	return s.evictScanned(cands, now)
}

// evictScanned evicts the scanned candidates, re-validating each under its
// stream lock: still hydrated, and not written since the scan.
func (s *Service) evictScanned(cands []evictCandidate, cutoff int64) int {
	evicted := 0
	for _, c := range cands {
		c.st.mu.Lock()
		if c.st.fc != nil && c.st.lastTouch.Load() == c.touch && c.touch < cutoff {
			if err := c.st.evictLocked(s); err == nil {
				evicted++
			}
		}
		c.st.mu.Unlock()
	}
	return evicted
}
