package qbets

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(true, WithSeed(1))
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestServerObserveAndForecast(t *testing.T) {
	_, ts := newTestServer(t)

	// Batch-observe enough waits for a bound.
	rng := rand.New(rand.NewSource(2))
	var records []ObserveRecord
	for i := 0; i < 200; i++ {
		records = append(records, ObserveRecord{
			Queue:       "normal",
			Procs:       4,
			WaitSeconds: math.Round(100 * math.Exp(rng.NormFloat64())),
		})
	}
	body, _ := json.Marshal(records)
	resp := postJSON(t, ts.URL+"/v1/observe", string(body))
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("observe status %d", resp.StatusCode)
	}

	get, err := http.Get(ts.URL + "/v1/forecast?queue=normal&procs=2")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	var fr ForecastResponse
	if err := json.NewDecoder(get.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	if !fr.OK || fr.BoundSeconds <= 0 {
		t.Fatalf("forecast = %+v", fr)
	}
	if fr.Quantile != 0.95 || fr.Confidence != 0.95 {
		t.Errorf("levels = %+v", fr)
	}
	if fr.Observations != 200 {
		t.Errorf("observations = %d", fr.Observations)
	}
}

func TestServerSingleObserve(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/observe", `{"queue":"q","procs":1,"wait_seconds":5}`)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Not enough history yet: forecast responds ok=false, not an error.
	get, err := http.Get(ts.URL + "/v1/forecast?queue=q&procs=1")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	var fr ForecastResponse
	json.NewDecoder(get.Body).Decode(&fr)
	if fr.OK {
		t.Error("forecast should be unavailable after one observation")
	}
}

func TestServerProfileAndStatus(t *testing.T) {
	_, ts := newTestServer(t)
	var buf bytes.Buffer
	buf.WriteString("[")
	for i := 0; i < 300; i++ {
		if i > 0 {
			buf.WriteString(",")
		}
		fmt.Fprintf(&buf, `{"queue":"normal","procs":64,"wait_seconds":%d}`, 10+i%500)
	}
	buf.WriteString("]")
	postJSON(t, ts.URL+"/v1/observe", buf.String())

	get, err := http.Get(ts.URL + "/v1/profile?queue=normal&procs=64")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	var entries []ProfileEntry
	if err := json.NewDecoder(get.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 || entries[0].Side != "lower" || !entries[3].OK {
		t.Fatalf("profile = %+v", entries)
	}

	st, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var status StatusResponse
	if err := json.NewDecoder(st.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if len(status.Streams) != 1 || status.Streams[0].Stream != "normal/17-64" {
		t.Fatalf("status = %+v", status)
	}
	if status.Quantile != 0.95 || status.Confidence != 0.95 {
		t.Errorf("status levels = %+v", status)
	}
	s0 := status.Streams[0]
	if !s0.BoundOK || s0.BoundSeconds <= 0 {
		t.Errorf("stream status = %+v", s0)
	}
	// 300 observations, the first bound appears at MinObservations: every
	// later observation resolves a prediction.
	if s0.Resolved == 0 || s0.LifetimeResolved != uint64(300-s0.MinObservations) {
		t.Errorf("resolved accounting = %+v", s0)
	}
	if s0.HitRate < 0 || s0.HitRate > 1 {
		t.Errorf("hit rate = %g", s0.HitRate)
	}
	// The workload is a monotone ramp — every wait tops all history — so
	// the self-monitor must report misses and the change-point detector
	// must have trimmed, with the trim time recorded.
	if s0.LifetimeHits == s0.LifetimeResolved {
		t.Errorf("ramp workload reported no misses: %+v", s0)
	}
	if s0.Trims == 0 || s0.LastTrimUnix == 0 {
		t.Errorf("ramp workload recorded no trims: %+v", s0)
	}
}

func TestServerValidation(t *testing.T) {
	_, ts := newTestServer(t)
	// Make one stream known so the unknown-queue cases are unambiguous.
	postJSON(t, ts.URL+"/v1/observe", `{"queue":"known","procs":1,"wait_seconds":5}`)

	cases := []struct {
		name               string
		method, path, body string
		wantStatus         int
		wantErr            string
	}{
		{"malformed json", "POST", "/v1/observe", `{bad json`, http.StatusBadRequest, "bad JSON"},
		{"malformed array", "POST", "/v1/observe", `[{"queue":"q"},`, http.StatusBadRequest, "bad JSON"},
		{"wrong payload type", "POST", "/v1/observe", `"just a string"`, http.StatusBadRequest, "bad JSON object"},
		{"missing queue", "POST", "/v1/observe", `{"queue":"","wait_seconds":1}`, http.StatusBadRequest, "queue required"},
		{"negative wait", "POST", "/v1/observe", `{"queue":"q","wait_seconds":-1}`, http.StatusBadRequest, "wait_seconds"},
		{"bad record in batch", "POST", "/v1/observe", `[{"queue":"q","wait_seconds":1},{"queue":"","wait_seconds":2}]`, http.StatusBadRequest, "record 1"},
		{"observe wrong method", "GET", "/v1/observe", "", http.StatusMethodNotAllowed, "POST required"},
		{"forecast wrong method", "DELETE", "/v1/forecast?queue=q", "", http.StatusMethodNotAllowed, "GET or POST required"},
		{"batch forecast bad json", "POST", "/v1/forecast", `[{"queue":`, http.StatusBadRequest, "bad JSON"},
		{"batch forecast non-array", "POST", "/v1/forecast", `{"queue":"q"}`, http.StatusBadRequest, "JSON array"},
		{"batch forecast missing queue", "POST", "/v1/forecast", `[{"queue":"known"},{"procs":2}]`, http.StatusBadRequest, "shape 1: queue required"},
		{"batch forecast bad procs", "POST", "/v1/forecast", `[{"queue":"known","procs":-3}]`, http.StatusBadRequest, "shape 0: procs"},
		{"forecast missing queue", "GET", "/v1/forecast", "", http.StatusBadRequest, "queue parameter required"},
		{"forecast bad procs", "GET", "/v1/forecast?queue=q&procs=zero", "", http.StatusBadRequest, "procs"},
		{"forecast negative procs", "GET", "/v1/forecast?queue=q&procs=-2", "", http.StatusBadRequest, "procs"},
		{"forecast unknown queue", "GET", "/v1/forecast?queue=nope&procs=1", "", http.StatusNotFound, "unknown stream"},
		{"profile unknown queue", "GET", "/v1/profile?queue=nope&procs=1", "", http.StatusNotFound, "unknown stream"},
		{"profile wrong method", "POST", "/v1/profile?queue=q", "", http.StatusMethodNotAllowed, "GET required"},
		{"status wrong method", "POST", "/v1/status", "", http.StatusMethodNotAllowed, "GET required"},
		{"unknown endpoint", "GET", "/v1/nope", "", http.StatusNotFound, "no such endpoint"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, _ := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.wantStatus {
				t.Errorf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.wantStatus)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("content-type = %q, want application/json", ct)
			}
			var body ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if body.Error == "" || !strings.Contains(body.Error, c.wantErr) {
				t.Errorf("error body %q does not mention %q", body.Error, c.wantErr)
			}
		})
	}

	// A queue observed only in one processor category is unknown in others.
	resp, err := http.Get(ts.URL + "/v1/forecast?queue=known&procs=128")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("other-bucket forecast: status %d, want 404", resp.StatusCode)
	}
}

func TestServerMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var records []ObserveRecord
	for i := 0; i < 100; i++ {
		records = append(records, ObserveRecord{Queue: "normal", Procs: 2, WaitSeconds: float64(10 + i%37)})
	}
	body, _ := json.Marshal(records)
	postJSON(t, ts.URL+"/v1/observe", string(body))
	if resp, err := http.Get(ts.URL + "/v1/forecast?queue=normal&procs=2"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content-type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{
		`qbets_http_requests_total{code="204",endpoint="observe"} 1`,
		`qbets_http_requests_total{code="200",endpoint="forecast"} 1`,
		"qbets_observations_total 100",
		`qbets_streams{state="live"} 1`,
		`qbets_stream_observations{stream="normal/1-4"} 100`,
		`qbets_stream_hit_rate{stream="normal/1-4"}`,
		`qbets_stream_trims_total{stream="normal/1-4"}`,
		`qbets_target_info{confidence="0.95",quantile="0.95"} 1`,
		"# TYPE qbets_prediction_latency_seconds histogram",
		`qbets_prediction_latency_seconds_bucket{le="+Inf"} 1`,
		"qbets_prediction_latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestOptionPropagation is the regression test for the NewServer/NewService
// option dedup: a custom quantile/confidence must be reflected identically
// in forecast responses, /v1/status, and /metrics labels, because all three
// now read the Service's resolved configuration.
func TestOptionPropagation(t *testing.T) {
	s := NewServer(false, WithQuantile(0.9), WithConfidence(0.8), WithSeed(3))
	ts := httptest.NewServer(s)
	defer ts.Close()

	postJSON(t, ts.URL+"/v1/observe", `{"queue":"q","procs":1,"wait_seconds":1}`)

	get, err := http.Get(ts.URL + "/v1/forecast?queue=q")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	var fr ForecastResponse
	if err := json.NewDecoder(get.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	if fr.Quantile != 0.9 || fr.Confidence != 0.8 {
		t.Errorf("forecast levels = %+v, want 0.9/0.8", fr)
	}

	st, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var status StatusResponse
	if err := json.NewDecoder(st.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Quantile != 0.9 || status.Confidence != 0.8 {
		t.Errorf("status levels = %+v, want 0.9/0.8", status)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if want := `qbets_target_info{confidence="0.8",quantile="0.9"} 1`; !strings.Contains(string(raw), want) {
		t.Errorf("metrics missing %q", want)
	}

	// The service the forecasters actually run with agrees.
	if s.Service().Quantile() != 0.9 || s.Service().Confidence() != 0.8 {
		t.Errorf("service levels = %g/%g", s.Service().Quantile(), s.Service().Confidence())
	}
}

func TestServerConcurrentAccess(t *testing.T) {
	s := NewServer(false, WithSeed(9))
	ts := httptest.NewServer(s)
	defer ts.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				body := fmt.Sprintf(`{"queue":"q%d","procs":1,"wait_seconds":%d}`, g%2, i)
				resp, err := http.Post(ts.URL+"/v1/observe", "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				get, err := http.Get(ts.URL + fmt.Sprintf("/v1/forecast?queue=q%d", g%2))
				if err != nil {
					t.Error(err)
					return
				}
				get.Body.Close()
			}
		}(g)
	}
	wg.Wait()
}
