package qbets

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(true, WithSeed(1))
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestServerObserveAndForecast(t *testing.T) {
	_, ts := newTestServer(t)

	// Batch-observe enough waits for a bound.
	rng := rand.New(rand.NewSource(2))
	var records []ObserveRecord
	for i := 0; i < 200; i++ {
		records = append(records, ObserveRecord{
			Queue:       "normal",
			Procs:       4,
			WaitSeconds: math.Round(100 * math.Exp(rng.NormFloat64())),
		})
	}
	body, _ := json.Marshal(records)
	resp := postJSON(t, ts.URL+"/v1/observe", string(body))
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("observe status %d", resp.StatusCode)
	}

	get, err := http.Get(ts.URL + "/v1/forecast?queue=normal&procs=2")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	var fr ForecastResponse
	if err := json.NewDecoder(get.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	if !fr.OK || fr.BoundSeconds <= 0 {
		t.Fatalf("forecast = %+v", fr)
	}
	if fr.Quantile != 0.95 || fr.Confidence != 0.95 {
		t.Errorf("levels = %+v", fr)
	}
	if fr.Observations != 200 {
		t.Errorf("observations = %d", fr.Observations)
	}
}

func TestServerSingleObserve(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/observe", `{"queue":"q","procs":1,"wait_seconds":5}`)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Not enough history yet: forecast responds ok=false, not an error.
	get, err := http.Get(ts.URL + "/v1/forecast?queue=q&procs=1")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	var fr ForecastResponse
	json.NewDecoder(get.Body).Decode(&fr)
	if fr.OK {
		t.Error("forecast should be unavailable after one observation")
	}
}

func TestServerProfileAndStatus(t *testing.T) {
	_, ts := newTestServer(t)
	var buf bytes.Buffer
	buf.WriteString("[")
	for i := 0; i < 300; i++ {
		if i > 0 {
			buf.WriteString(",")
		}
		fmt.Fprintf(&buf, `{"queue":"normal","procs":64,"wait_seconds":%d}`, 10+i%500)
	}
	buf.WriteString("]")
	postJSON(t, ts.URL+"/v1/observe", buf.String())

	get, err := http.Get(ts.URL + "/v1/profile?queue=normal&procs=64")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	var entries []ProfileEntry
	if err := json.NewDecoder(get.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 || entries[0].Side != "lower" || !entries[3].OK {
		t.Fatalf("profile = %+v", entries)
	}

	st, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Body.Close()
	var status StatusResponse
	if err := json.NewDecoder(st.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if len(status.Streams) != 1 || status.Streams[0] != "normal/17-64" {
		t.Fatalf("status = %+v", status)
	}
}

func TestServerValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		method, path, body string
		wantStatus         int
	}{
		{"POST", "/v1/observe", `{bad json`, http.StatusBadRequest},
		{"POST", "/v1/observe", `{"queue":"","wait_seconds":1}`, http.StatusBadRequest},
		{"POST", "/v1/observe", `{"queue":"q","wait_seconds":-1}`, http.StatusBadRequest},
		{"GET", "/v1/observe", "", http.StatusMethodNotAllowed},
		{"POST", "/v1/forecast?queue=q", "", http.StatusMethodNotAllowed},
		{"GET", "/v1/forecast", "", http.StatusBadRequest},
		{"GET", "/v1/forecast?queue=q&procs=zero", "", http.StatusBadRequest},
		{"GET", "/v1/forecast?queue=q&procs=-2", "", http.StatusBadRequest},
		{"GET", "/v1/nope", "", http.StatusNotFound},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.wantStatus {
			t.Errorf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.wantStatus)
		}
	}
}

func TestServerConcurrentAccess(t *testing.T) {
	s := NewServer(false, WithSeed(9))
	ts := httptest.NewServer(s)
	defer ts.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				body := fmt.Sprintf(`{"queue":"q%d","procs":1,"wait_seconds":%d}`, g%2, i)
				resp, err := http.Post(ts.URL+"/v1/observe", "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				get, err := http.Get(ts.URL + fmt.Sprintf("/v1/forecast?queue=q%d", g%2))
				if err != nil {
					t.Error(err)
					return
				}
				get.Body.Close()
			}
		}(g)
	}
	wg.Wait()
}
