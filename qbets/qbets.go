// Package qbets is the public API of this reproduction of Brevik, Nurmi,
// and Wolski, "Predicting Bounds on Queuing Delay in Space-shared Computing
// Environments" (IISWC 2006). The prediction method the paper calls BMBP —
// the Brevik Method Batch Predictor — was later productized by the authors
// as QBETS, which gives this package its name.
//
// The core object is the Forecaster: feed it the queue waits of completed
// jobs, in the order they become observable, and ask it at any time for an
// upper bound on the delay the next submission will suffer, with a
// quantified confidence level:
//
//	f := qbets.New()                  // 0.95 quantile at 95% confidence
//	for _, w := range pastWaits {
//	    f.Observe(w)
//	}
//	bound, ok := f.Forecast()
//	// ok => with 95% confidence, at most 5% of submissions wait > bound.
//
// The Service type manages a family of forecasters keyed by queue name and
// processor-count category, matching the paper's Section 6.2 usage, and
// Evaluate replays a historical trace under the paper's simulation rules
// (Section 5.1) to report how a method would have performed.
package qbets

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Option configures a Forecaster.
type Option func(*config)

type config struct {
	quantile   float64
	confidence float64
	maxHistory int
	noTrim     bool
	fixedRare  int
	seed       int64
}

// WithQuantile sets the population quantile to bound (default 0.95).
func WithQuantile(q float64) Option {
	return func(c *config) { c.quantile = q }
}

// WithConfidence sets the bound's confidence level (default 0.95).
func WithConfidence(conf float64) Option {
	return func(c *config) { c.confidence = conf }
}

// WithMaxHistory caps the retained history length (default unbounded).
func WithMaxHistory(n int) Option {
	return func(c *config) { c.maxHistory = n }
}

// WithoutTrimming disables nonstationarity detection (the paper's BMBP
// always trims; this exists for experimentation).
func WithoutTrimming() Option {
	return func(c *config) { c.noTrim = true }
}

// WithFixedChangeThreshold bypasses the autocorrelation-calibrated
// rare-event lookup and treats n consecutive missed predictions as a
// change point.
func WithFixedChangeThreshold(n int) Option {
	return func(c *config) { c.fixedRare = n }
}

// WithSeed fixes the internal balancing randomness so runs are exactly
// reproducible (any value works; determinism is the point).
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}

// Forecaster predicts confidence-bounded queue-delay quantiles for a single
// stream of wait observations (one queue, or one queue × processor-count
// category). It is not safe for concurrent use.
type Forecaster struct {
	b *core.BMBP
}

// New returns a Forecaster. With no options it reproduces the paper's
// configuration: an upper bound on the 0.95 quantile at 95% confidence,
// with autocorrelation-calibrated change-point trimming. New panics on
// out-of-range levels (quantile or confidence outside (0, 1)) — those are
// programming errors, not runtime conditions.
func New(opts ...Option) *Forecaster {
	c := config{quantile: 0.95, confidence: 0.95}
	for _, o := range opts {
		o(&c)
	}
	if !(c.quantile > 0 && c.quantile < 1) {
		panic(fmt.Sprintf("qbets: quantile %g outside (0, 1)", c.quantile))
	}
	if !(c.confidence > 0 && c.confidence < 1) {
		panic(fmt.Sprintf("qbets: confidence %g outside (0, 1)", c.confidence))
	}
	return &Forecaster{b: core.New(core.Config{
		Quantile:           c.quantile,
		Confidence:         c.confidence,
		MaxHistory:         c.maxHistory,
		NoTrim:             c.noTrim,
		FixedRareThreshold: c.fixedRare,
		Seed:               c.seed,
	})}
}

// Observe records the wait (in seconds) of a job that has left the queue.
// Observations must arrive in the order waits become visible — job start
// order, which is how scheduler logs emit them.
func (f *Forecaster) Observe(waitSeconds float64) {
	f.b.ObserveAuto(waitSeconds)
}

// Forecast returns the current upper confidence bound on the configured
// quantile of queue delay, in seconds. ok is false until MinObservations
// waits have been seen.
func (f *Forecaster) Forecast() (seconds float64, ok bool) {
	return f.b.Bound()
}

// Bound is one entry of a quantile profile.
type Bound struct {
	Quantile   float64
	Confidence float64
	// Lower marks a lower confidence bound (an "at least this long"
	// statement); false means upper.
	Lower   bool
	Seconds float64
	OK      bool
}

// ForecastQuantile computes a one-off bound at any quantile and confidence
// from the same history; lower selects the bound's side.
func (f *Forecaster) ForecastQuantile(q, confidence float64, lower bool) Bound {
	side := core.Upper
	if lower {
		side = core.Lower
	}
	v, ok := f.b.BoundFor(q, confidence, side)
	return Bound{Quantile: q, Confidence: confidence, Lower: lower, Seconds: v, OK: ok}
}

// Profile returns the paper's Table 8 quantile profile: a 95%-confidence
// lower bound on the 0.25 quantile and upper bounds on the 0.5, 0.75, and
// 0.95 quantiles.
func (f *Forecaster) Profile() []Bound {
	entries := core.ProfileOf(f.b, core.Table8Specs)
	out := make([]Bound, len(entries))
	for i, e := range entries {
		out[i] = Bound{
			Quantile:   e.Spec.Q,
			Confidence: e.Spec.C,
			Lower:      e.Spec.Side == core.Lower,
			Seconds:    e.Bound,
			OK:         e.OK,
		}
	}
	return out
}

// ProbabilityWithin answers the inverse question a user actually asks —
// "how sure can I be that my job starts within this many seconds?" — by
// finding the largest quantile q whose confident upper bound fits inside
// the deadline. The result reads as: with the configured confidence, at
// least a fraction q of submissions start within deadlineSeconds. ok is
// false while the history is too short; a q of 0 means even the most
// modest statement does not fit the deadline.
func (f *Forecaster) ProbabilityWithin(deadlineSeconds float64) (q float64, ok bool) {
	conf := f.b.Config().Confidence
	check := func(q float64) (fits, valid bool) {
		b, okq := f.b.BoundFor(q, conf, core.Upper)
		return okq && b <= deadlineSeconds, okq
	}
	// Bisect over q. The bound is nondecreasing in q; the valid q range
	// shrinks with history, so probe the coarse grid first.
	lo, hi := 0.0, 0.0
	for _, probe := range []float64{0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		fits, valid := check(probe)
		if !valid {
			break
		}
		ok = true
		if fits {
			lo, hi = probe, probe
		} else {
			hi = probe
			break
		}
	}
	if !ok {
		return 0, false
	}
	if hi == lo {
		// Everything probed fits (or nothing did).
		return lo, true
	}
	for i := 0; i < 20 && hi-lo > 1e-3; i++ {
		mid := (lo + hi) / 2
		if fits, valid := check(mid); valid && fits {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true
}

// FitDiagnostic reports how defensible a log-normal model of this queue's
// waits would be: the Kolmogorov–Smirnov distance of the best-fitting
// log-normal to the current history and its (asymptotic) p-value. Small
// p-values mean a parametric log-normal predictor is structurally wrong on
// this queue — the situation in which the paper shows the parametric
// comparator failing while BMBP, which assumes nothing, stays correct.
func (f *Forecaster) FitDiagnostic() (ksDistance, pValue float64) {
	return stats.KSTestLogNormal(f.b.History())
}

// MinObservations returns how many waits must be observed before Forecast
// can produce a bound (59 for the default 0.95/0.95 configuration).
func (f *Forecaster) MinObservations() int {
	return f.b.MinHistory()
}

// Observations returns the current history length.
func (f *Forecaster) Observations() int {
	return f.b.HistoryLen()
}

// ChangePoints returns how many nonstationarity events the forecaster has
// detected and adapted to (by trimming its history).
func (f *Forecaster) ChangePoints() int {
	return f.b.Trims()
}

// ProcCategory is a processor-count range, matching the paper's Section 6.2
// categories (1-4, 5-16, 17-64, 65+).
type ProcCategory = trace.ProcBucket

// CategoryOf returns the category containing a processor count.
func CategoryOf(procs int) ProcCategory { return trace.BucketOf(procs) }
