package qbets

import "testing"

// Alloc budgets for the steady-state write plane. The benchmarks report
// allocs/op but CI doesn't fail on them; these tests do. The budget is
// deliberately fractional: the hot path itself is alloc-free, but history
// growth inside the forecaster and the 1-in-publishBacklog eager snapshot
// publish amortize to well under half an allocation per observe. A
// regression that puts even one allocation on the per-record path lands at
// ≥1.0 and fails loudly.
const writePathAllocBudget = 0.5

// TestObserveAllocBudget pins the single-record write path (the
// BenchmarkServiceObserve/nowal subject) at amortized-zero allocations.
func TestObserveAllocBudget(t *testing.T) {
	svc := NewService(false, WithSeed(3))
	// Warm: create the stream, settle the forecaster, grow early buffers.
	for i := 0; i < 2000; i++ {
		if err := svc.Observe("normal", 1, float64(i%1000)); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	avg := testing.AllocsPerRun(4000, func() {
		if err := svc.Observe("normal", 1, float64(i%1000)); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg > writePathAllocBudget {
		t.Fatalf("Observe averaged %.3f allocs/op, budget %.1f", avg, writePathAllocBudget)
	}
}

// TestObserveBatchAllocBudget pins the batched write path (the
// BenchmarkServiceObserveBatch/nowal subjects) per record, across the
// benchmarked batch sizes.
func TestObserveBatchAllocBudget(t *testing.T) {
	for _, size := range []int{1, 10, 100} {
		svc := NewService(false, WithSeed(3))
		recs := make([]ObserveRecord, size)
		for i := range recs {
			recs[i] = ObserveRecord{Queue: "normal", Procs: 1, WaitSeconds: float64(10 + i%1000)}
		}
		for i := 0; i < 2000/size+1; i++ {
			if _, err := svc.ObserveBatch(recs); err != nil {
				t.Fatal(err)
			}
		}
		runs := 4000 / size
		if runs < 200 {
			runs = 200
		}
		avg := testing.AllocsPerRun(runs, func() {
			if _, err := svc.ObserveBatch(recs); err != nil {
				t.Fatal(err)
			}
		})
		if perRec := avg / float64(size); perRec > writePathAllocBudget {
			t.Fatalf("ObserveBatch size %d averaged %.3f allocs/record, budget %.1f", size, perRec, writePathAllocBudget)
		}
	}
}
