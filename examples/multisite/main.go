// Multisite: the paper's Figure 1 scenario. A user with allocations at two
// HPC centers keeps one Forecaster per site fed from each site's scheduler
// log, and routes every job to the site with the smaller worst-case bound.
// The run reports how often the routed choice beat the alternative.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro/qbets"
)

// site simulates one center's queue: a log-normal wait body whose scale
// moves through congestion regimes, as the paper's logs do.
type site struct {
	name      string
	forecast  *qbets.Forecaster
	rng       *rand.Rand
	baseLog   float64
	spreadLog float64
	regime    float64 // current additional log-lift
	left      int     // jobs left in the current regime
}

func newSite(name string, baseSeconds float64, seed int64) *site {
	return &site{
		name:      name,
		forecast:  qbets.New(qbets.WithSeed(seed)),
		rng:       rand.New(rand.NewSource(seed)),
		baseLog:   math.Log(baseSeconds),
		spreadLog: 1.0,
	}
}

// draw samples the wait the site would impose right now.
func (s *site) draw() float64 {
	if s.left == 0 {
		// New regime: usually calm, occasionally congested 20x.
		s.regime = 0
		if s.rng.Float64() < 0.25 {
			s.regime = 3
		}
		s.left = 500 + s.rng.Intn(1500)
	}
	s.left--
	return math.Round(math.Exp(s.baseLog + s.regime + s.spreadLog*s.rng.NormFloat64()))
}

func main() {
	datastar := newSite("sdsc-datastar", 1800, 11) // slow site: half-hour body
	lonestar := newSite("tacc-lonestar", 12, 12)   // fast site: seconds

	// Warm both forecasters with each site's visible history.
	for i := 0; i < 2000; i++ {
		datastar.forecast.Observe(datastar.draw())
		lonestar.forecast.Observe(lonestar.draw())
	}

	var routedWin, total int
	for job := 0; job < 20000; job++ {
		b1, ok1 := datastar.forecast.Forecast()
		b2, ok2 := lonestar.forecast.Forecast()
		if !ok1 || !ok2 {
			continue
		}
		// Route to the site with the smaller 95%-confidence worst case.
		w1 := datastar.draw()
		w2 := lonestar.draw()
		chosenWait, otherWait := w1, w2
		if b2 < b1 {
			chosenWait, otherWait = w2, w1
		}
		if chosenWait <= otherWait {
			routedWin++
		}
		total++
		// Both sites' outcomes become visible history (the user sees both
		// logs, as in the paper's TeraGrid motivation).
		datastar.forecast.Observe(w1)
		lonestar.forecast.Observe(w2)

		if job%5000 == 0 {
			fmt.Printf("job %5d: %s bound %8.0fs | %s bound %8.0fs\n",
				job, datastar.name, b1, lonestar.name, b2)
		}
	}
	fmt.Printf("\nrouting by predicted bound picked the faster (or equal) site %.1f%% of the time (%d jobs)\n",
		100*float64(routedWin)/float64(total), total)
	fmt.Printf("change points detected: %s=%d, %s=%d\n",
		datastar.name, datastar.forecast.ChangePoints(),
		lonestar.name, lonestar.forecast.ChangePoints())
}
