// Jobsize: the paper's Section 6.2 scenario. Users believe small jobs
// backfill sooner than large ones — but the only way to know *today's*
// policy is to predict per processor-count category. This example runs a
// qbets.Service split by category over a workload whose priorities flip
// mid-stream (the surprise the paper's Figure 2 documents) and shows the
// forecasts tracking the flip.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro/qbets"
)

func main() {
	svc := qbets.NewService(true /* split by processor category */)
	rng := rand.New(rand.NewSource(3))

	// Phase 1: conventional policy — larger requests wait longer.
	offsets := map[int]float64{2: 0, 8: 0.5, 32: 1.2, 128: 1.8}
	feed := func(jobs int) {
		for i := 0; i < jobs; i++ {
			for procs, off := range offsets {
				wait := math.Round(math.Exp(math.Log(600) + off + rng.NormFloat64()))
				svc.Observe("normal", procs, wait)
			}
		}
	}
	report := func(phase string) {
		fmt.Printf("%s:\n", phase)
		for _, procs := range []int{2, 8, 32, 128} {
			bound, ok := svc.Forecast("normal", procs)
			if !ok {
				fmt.Printf("  %4d procs (%5s): insufficient history\n", procs, qbets.CategoryOf(procs).Label())
				continue
			}
			fmt.Printf("  %4d procs (%5s): 95%%-confidence worst case %8.0f s\n",
				procs, qbets.CategoryOf(procs).Label(), bound)
		}
	}

	feed(2000)
	report("conventional policy (small jobs favored)")

	// Phase 2: administrators flip the policy before a big demo — large
	// jobs now drain first. The forecasters detect the change points and
	// re-learn.
	offsets = map[int]float64{2: 1.5, 8: 1.0, 32: 0.2, 128: 0}
	feed(3000)
	report("\nafter the flip (large jobs favored)")

	// A user about to submit a 32-processor job sees the advantage
	// directly, just as the paper's Figure 2 user would have.
	small, _ := svc.Forecast("normal", 2)
	large, _ := svc.Forecast("normal", 32)
	fmt.Printf("\nsubmitting wide is now predicted ~%.1fx faster in the worst case\n", small/large)

	// The same separation can be learned instead of configured: an
	// AutoService clusters job shapes itself (the QBETS follow-up's
	// approach) — no one has to guess the right processor ranges.
	auto := qbets.NewAutoService(3, 600)
	rng2 := rand.New(rand.NewSource(9))
	for i := 0; i < 4000; i++ {
		for procs, off := range offsets {
			wait := math.Round(math.Exp(math.Log(600) + off + rng2.NormFloat64()))
			auto.Observe(procs, 0, wait)
		}
	}
	fmt.Printf("\nlearned categories (%d clusters found):\n", auto.Categories())
	for _, procs := range []int{2, 8, 32, 128} {
		if bound, ok := auto.Forecast(procs, 0); ok {
			fmt.Printf("  %4d procs -> cluster %d, worst case %8.0f s\n",
				procs, auto.CategoryOfJob(procs, 0), bound)
		}
	}
}
