// Quickstart: feed a Forecaster historical queue waits, get an upper bound
// on the delay the next job will suffer, with 95% confidence on the 0.95
// quantile — the paper's headline capability.
package main

import (
	"fmt"
	"math"
	"math/rand"

	"repro/qbets"
)

func main() {
	f := qbets.New() // 0.95 quantile at 95% confidence, trimming enabled

	// Replay a synthetic history: log-normal waits around 20 minutes with
	// a heavy tail, the shape every batch queue in the paper's Table 1
	// exhibits.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		wait := math.Round(math.Exp(math.Log(1200) + 1.5*rng.NormFloat64()))
		f.Observe(wait)
	}

	bound, ok := f.Forecast()
	if !ok {
		panic("needs at least 59 observations")
	}
	fmt.Printf("Observed %d completed jobs (%d change points detected).\n",
		f.Observations(), f.ChangePoints())
	fmt.Printf("With 95%% confidence, at most 5%% of submissions will wait more than %.0f s (%.1f h).\n",
		bound, bound/3600)

	// The same history answers richer questions (the paper's Table 8
	// profile): how long might a job wait at several likelihoods?
	fmt.Println("\nQuantile profile (95% confidence):")
	for _, b := range f.Profile() {
		side := "no more than"
		if b.Lower {
			side = "at least    "
		}
		fmt.Printf("  %2.0f%% of jobs wait %s %8.0f s\n", b.Quantile*100, side, b.Seconds)
	}

	// A submission-time decision: can I expect results within two hours?
	twoHours := 7200.0
	q50 := f.ForecastQuantile(0.50, 0.95, false)
	switch {
	case bound <= twoHours:
		fmt.Println("\nEven the worst typical case starts within two hours.")
	case q50.OK && q50.Seconds <= twoHours:
		fmt.Println("\nThe median case starts within two hours, but budget for the tail.")
	default:
		fmt.Println("\nPlan for a long wait or pick another queue.")
	}

	// Or ask the inverse question directly: how sure can I be of starting
	// within a given deadline?
	for _, deadline := range []float64{600, 3600, 6 * 3600} {
		if q, ok := f.ProbabilityWithin(deadline); ok {
			fmt.Printf("with 95%% confidence, at least %2.0f%% of submissions start within %5.0f s\n",
				q*100, deadline)
		}
	}
}
