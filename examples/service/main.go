// Service: run the prediction HTTP service in-process, feed it a
// scheduler-log dump over the wire, and query forecasts the way a portal
// or metascheduler would.
package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/qbets"
)

func main() {
	// In production: qbets-serve -addr :8080. Here: an in-process server.
	srv := httptest.NewServer(qbets.NewServer(true))
	defer srv.Close()

	// A site cron job POSTs the latest completed jobs every five minutes.
	rng := rand.New(rand.NewSource(7))
	var records []qbets.ObserveRecord
	for i := 0; i < 500; i++ {
		procs := 1 << rng.Intn(8)
		lift := 0.4 * math.Log2(float64(procs)) // bigger jobs wait longer
		records = append(records, qbets.ObserveRecord{
			Queue:       "normal",
			Procs:       procs,
			WaitSeconds: math.Round(math.Exp(math.Log(300) + lift + rng.NormFloat64())),
		})
	}
	body, _ := json.Marshal(records)
	resp, err := http.Post(srv.URL+"/v1/observe", "application/json", strings.NewReader(string(body)))
	if err != nil {
		panic(err)
	}
	resp.Body.Close()
	fmt.Printf("posted %d completed jobs -> %s\n\n", len(records), resp.Status)

	// A user about to submit asks: how long might my job wait, at worst?
	for _, procs := range []int{1, 8, 32, 128} {
		r, err := http.Get(fmt.Sprintf("%s/v1/forecast?queue=normal&procs=%d", srv.URL, procs))
		if err != nil {
			panic(err)
		}
		var fr qbets.ForecastResponse
		json.NewDecoder(r.Body).Decode(&fr)
		r.Body.Close()
		if fr.OK {
			fmt.Printf("%4d procs: with %.0f%% confidence, at most %.0f%% of jobs wait > %.0f s (history %d)\n",
				procs, fr.Confidence*100, (1-fr.Quantile)*100, fr.BoundSeconds, fr.Observations)
		} else {
			fmt.Printf("%4d procs: not enough history yet (%d observations)\n", procs, fr.Observations)
		}
	}

	// The richer profile for one shape.
	r, err := http.Get(srv.URL + "/v1/profile?queue=normal&procs=8")
	if err != nil {
		panic(err)
	}
	var prof []qbets.ProfileEntry
	json.NewDecoder(r.Body).Decode(&prof)
	r.Body.Close()
	fmt.Println("\n8-processor profile:")
	for _, e := range prof {
		fmt.Printf("  %s bound on the %.0f%% quantile: %8.0f s\n", e.Side, e.Quantile*100, e.Seconds)
	}
}
