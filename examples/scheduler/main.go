// Scheduler: an end-to-end run against the space-shared batch-scheduler
// substrate. Wait times here are not sampled from any distribution — they
// emerge from processor contention, priority-FCFS selection, and EASY
// backfilling on a simulated 128-processor machine — and BMBP's bounds are
// then verified against them through the public API.
package main

import (
	"fmt"

	"repro/internal/scheduler"
	"repro/qbets"
)

func main() {
	// Offer ~40k jobs to a three-queue machine.
	jobs := scheduler.GenerateJobs(scheduler.WorkloadConfig{Jobs: 40000, Seed: 2024})
	res, err := scheduler.Run(scheduler.DefaultMachine(), jobs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("scheduled %d jobs on 128 processors: utilization %.0f%%, %d backfilled\n\n",
		len(res.Jobs), res.Utilization*100, res.Backfilled)

	for _, queue := range []string{"high", "normal", "low"} {
		internal := res.Trace("sim128", queue)
		tr := qbets.Trace{Machine: "sim128", Queue: queue}
		for _, j := range internal.Jobs {
			tr.Jobs = append(tr.Jobs, qbets.Job{Submit: j.Submit, WaitSeconds: j.Wait, Procs: j.Procs})
		}

		reports := qbets.Evaluate(tr, qbets.EvalConfig{})
		fmt.Printf("queue %-7s (%d jobs):\n", queue, len(tr.Jobs))
		for _, r := range reports {
			marker := " "
			if r.CorrectFraction < 0.95 {
				marker = "*"
			}
			fmt.Printf("  %-12s correct %.3f%s  median actual/predicted %.2e  change points %d\n",
				r.Method, r.CorrectFraction, marker, r.MedianRatio, r.ChangePoints)
		}
	}
	fmt.Println("\nBMBP stays above 0.95 on emergent waits; the untrimmed log-normal does not —")
	fmt.Println("the paper's comparison, reproduced on a mechanistic substrate.")
}
